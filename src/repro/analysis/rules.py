"""The rule catalog of the static analyzers, and the analyzer fingerprint.

Every diagnostic the static passes can emit carries a stable rule id.
This module is the single registry of those ids — one line per rule,
split by family:

* ``LINT_RULES`` — correctness findings of ``repro lint``
  (:mod:`repro.analysis.checks` / :mod:`repro.analysis.deadlock` /
  :mod:`repro.analysis.analyzer`): would the program crash, deadlock,
  mismatch, or fail to place?
* ``PERF_RULES`` — performance findings of ``repro advise``
  (:mod:`repro.analysis.advisor`): *where does the model say the time
  goes, and which placement/config choices are leaving it on the table?*
  All ``perf-*`` ids live here.
* ``MODEL_RULES`` / ``COUNTER_RULES`` — model-consistency findings
  folded into the same vocabulary by :mod:`repro.validate` and
  :mod:`repro.perf.accounting`.

:func:`analyzer_fingerprint` digests the registry (plus a manually
bumped :data:`ANALYZER_VERSION` for behaviour changes that keep rule ids
stable).  The lint cache tags every persisted report with it, so adding
a rule — or bumping the version after tightening a check — invalidates
stale cached verdicts instead of silently reusing reports produced by a
weaker analyzer.
"""

from __future__ import annotations

import hashlib

#: Bump when any check's *behaviour* changes without its rule id set
#: changing (tightened threshold, wider trigger, message overhaul that
#: tools parse).  Rule-id additions/removals re-fingerprint on their own.
ANALYZER_VERSION = 2

#: Correctness rules (``repro lint``).
LINT_RULES: dict[str, str] = {
    "program-config": "a rank generator rejected its (rank, n_ranks)",
    "program-crash": "a rank generator raised while being replayed",
    "program-budget": "a rank program exceeded the replay op budget",
    "unknown-op": "a rank yielded an object that is not a program op",
    "unknown-kernel": "a Compute references an unregistered kernel",
    "communicator-invalid": "a communicator has invalid members",
    "p2p-invalid-send": "a send targets an out-of-range rank or itself",
    "p2p-invalid-recv": "a receive names an out-of-range source",
    "p2p-tag-range": "a message tag is outside the valid domain",
    "p2p-unmatched-recv": "a receive has no matching send",
    "p2p-unmatched-send": "a send has no matching receive",
    "collective-unknown-comm": "a collective names an unknown communicator",
    "collective-nonmember": "a rank enters a collective it is not in",
    "collective-bad-root": "a rooted collective names a non-member root",
    "collective-count": "communicator members disagree on collective count",
    "collective-divergence": "members issue different collective sequences",
    "collective-root-divergence": "members disagree on a collective's root",
    "collective-reentry": "a rank re-enters a collective it never left",
    "waitall-non-request": "WaitAll on an object that is not a request",
    "request-foreign": "a wait names a request another rank posted",
    "request-double-wait": "a request is waited on twice",
    "request-unwaited": "a posted request is never waited on",
    "deadlock": "order-aware replay wedged with ranks still blocked",
    "placement-infeasible": "ranks x threads cannot bind to the machine",
    "config-processor": "the processor is not in the catalog",
    "config-app": "the app/dataset pair does not resolve",
    "config-job": "the app rejects this rank count / dataset",
}

#: Performance rules (``repro advise``).  One worked example per rule
#: lives in DESIGN.md's "Static performance advisor" section.
PERF_RULES: dict[str, str] = {
    "perf-placement-infeasible":
        "ranks x threads cannot bind to the CMG topology (error)",
    "perf-cmg-span":
        "a rank's threads straddle CMGs although they fit in one",
    "perf-remote-traffic":
        "serial-init data policy routes a rank's traffic to a remote CMG",
    "perf-memory-bound":
        "ECM DRAM phase dominates a kernel; cites the CMG saturation "
        "point and per-stream share",
    "perf-l2-bound":
        "ECM L2 phase dominates a kernel on its critical context",
    "perf-load-imbalance":
        "rank equivalence classes finish at skewed times; names the "
        "slowest class",
    "perf-gather-stride":
        "non-contiguous access wastes cache lines and inflates DRAM "
        "traffic",
    "perf-working-set-spill":
        "the per-thread working set overflows L2; reuse traffic falls "
        "through to DRAM",
    "perf-collective-dominated":
        "communication time dominates a rank class's step time",
    "perf-undersubscribed":
        "the placement leaves cores of the allocated nodes idle",
}

#: Model-consistency rules (``repro validate``).
MODEL_RULES: dict[str, str] = {
    "model-work-accounting": "simulated FLOPs drift from the closed form",
    "model-decomposition": "FLOP totals drift across rank counts",
    "model-catalog": "catalog peaks disagree with published figures",
    "model-bandwidth-curve": "the STREAM knee left the published band",
    "model-engine-agreement": "analytic and event engines disagree",
}

#: Counter cross-validation rules (``repro validate --counters``).
COUNTER_RULES: dict[str, str] = {
    "counter-conservation": "stall categories fail to sum to total cycles",
    "counter-roofline-ai": "counter AI drifts from the analytic roofline",
    "counter-roofline-gflops": "counter GF/s drifts from the analytic "
                               "roofline",
    "counter-flops-conservation": "counter flops != executor flops",
    "counter-bytes-conservation": "counter bytes != executor DRAM bytes",
    "counter-cycle-conservation": "attributed cycles != time x frequency",
    "counter-roofline-run": "run-level counter roofline left the band",
}

#: Every known rule id -> one-line description.
ALL_RULES: dict[str, str] = {
    **LINT_RULES, **PERF_RULES, **MODEL_RULES, **COUNTER_RULES,
}

_fingerprint_memo: str | None = None


def analyzer_fingerprint(refresh: bool = False) -> str:
    """Digest of the analyzer's rule catalog and behaviour version.

    Changes whenever a rule id is added or removed, or
    :data:`ANALYZER_VERSION` is bumped — the invalidation key the lint
    cache stores next to the model fingerprint, so upgraded checks
    re-analyze instead of serving reports from an older analyzer.
    """
    global _fingerprint_memo
    if _fingerprint_memo is not None and not refresh:
        return _fingerprint_memo
    blob = f"v{ANALYZER_VERSION}:" + ",".join(sorted(ALL_RULES))
    _fingerprint_memo = hashlib.sha256(blob.encode()).hexdigest()[:16]
    return _fingerprint_memo
