"""Symbolic replay of rank programs.

The analyzer's input is the same generator the executor interprets — but
replayed *without* advancing simulated time: every yielded op is recorded
in order, and ops that would yield a request handle get a
:class:`TracedRequest` token sent back, so ``r = yield Irecv(...)`` /
``yield WaitAll([r])`` round-trips exactly as it does under the real
executor.  Control flow in the shipped skeletons never depends on
*received values* (receives carry no payload in this simulator), so the
replayed op stream is the exact stream the simulation would issue.

A program that raises during replay — a :class:`ConfigurationError` from
an op constructor, a decomposition failure, an ``IndexError`` in user
code — becomes a per-rank failure diagnostic instead of an exception, so
one broken rank cannot hide findings on the others.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.errors import ReproError
from repro.runtime import program as ops

#: Per-rank op budget: a guard against unbounded generators (a while-True
#: program would otherwise hang the analyzer, not the simulation).
DEFAULT_MAX_OPS = 1_000_000


class TracedRequest:
    """Stand-in for the runtime's request handle during replay."""

    __slots__ = ("rank", "op_index", "op")

    def __init__(self, rank: int, op_index: int, op: Any) -> None:
        self.rank = rank
        self.op_index = op_index
        self.op = op

    def describe(self) -> str:
        return f"request of {ops.describe_op(self.op)} (op #{self.op_index})"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<TracedRequest rank={self.rank} {self.describe()}>"


class TracedOp:
    """One recorded (rank, index, op) with its replay request, if any."""

    __slots__ = ("rank", "index", "op", "request")

    def __init__(self, rank: int, index: int, op: Any,
                 request: TracedRequest | None) -> None:
        self.rank = rank
        self.index = index
        self.op = op
        self.request = request

    def describe(self) -> str:
        return ops.describe_op(self.op)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<TracedOp rank={self.rank} #{self.index} {self.describe()}>"


class ProgramTrace:
    """Everything one rank's replay produced."""

    __slots__ = ("rank", "ops", "failure", "truncated")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.ops: list[TracedOp] = []
        #: Diagnostic when the generator raised; replay stops there.
        self.failure: Diagnostic | None = None
        #: True when the op budget cut the replay short.
        self.truncated = False


def trace_rank(factory: Callable[[int, int], Iterator], rank: int,
               n_ranks: int, max_ops: int = DEFAULT_MAX_OPS) -> ProgramTrace:
    """Replay one rank's program into a :class:`ProgramTrace`."""
    trace = ProgramTrace(rank)
    records = trace.ops
    try:
        gen = factory(rank, n_ranks)
        send_value = None
        while True:
            try:
                op = gen.send(send_value)
            except StopIteration:
                break
            send_value = None
            index = len(records)
            if index >= max_ops:
                trace.truncated = True
                gen.close()
                break
            request = None
            if ops.yields_request(op):
                request = TracedRequest(rank, index, op)
                send_value = request
            records.append(TracedOp(rank, index, op, request))
    except ReproError as exc:
        trace.failure = Diagnostic(
            check="program-config", severity="error",
            rank=rank, op_index=len(records),
            message=f"program raised {type(exc).__name__}: {exc}",
            hint="fix the rank program or the dataset parameters; the "
                 "simulation would fail at the same point",
        )
    except Exception as exc:  # noqa: BLE001 - surface user-code crashes
        trace.failure = Diagnostic(
            check="program-crash", severity="error",
            rank=rank, op_index=len(records),
            message=f"program crashed with {type(exc).__name__}: {exc}",
            hint="the rank program has a Python bug that would also kill "
                 "the simulation",
        )
    return trace


def trace_program(factory: Callable[[int, int], Iterator], n_ranks: int,
                  max_ops: int = DEFAULT_MAX_OPS) -> dict[int, ProgramTrace]:
    """Replay every rank; returns rank -> :class:`ProgramTrace`."""
    return {rank: trace_rank(factory, rank, n_ranks, max_ops)
            for rank in range(n_ranks)}
