"""Analysis orchestration: programs, jobs, and configs in; reports out.

Three entry points at increasing altitude:

* :func:`analyze_program` — check a bare rank-program factory (the unit
  the tests seed bugs into);
* :func:`analyze_job` — check an assembled
  :class:`~repro.runtime.executor.Job`, taking the eager threshold and
  communicators from the job's cluster;
* :func:`analyze_config` — the full front door: placement feasibility
  (reusing :class:`~repro.runtime.placement.JobPlacement` — the exact
  logic the runtime applies), job assembly, then program analysis, with
  every constructor failure converted to a diagnostic instead of an
  exception.

:func:`preflight` is the gate ``run_config``/``run_sweep`` call before
simulating: it memoizes verdicts per config digest (in-process, plus the
persistent :class:`~repro.analysis.cache.LintCache` when a cache
directory is in play) and raises :class:`~repro.errors.LintError` when
the report contains error-severity findings.  ``REPRO_NO_LINT=1`` (or
:func:`set_preflight`) disables the gate — the environment variable
travels into sweep worker processes.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Iterator

from repro.analysis import checks
from repro.analysis.deadlock import find_deadlocks
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.analysis.trace import DEFAULT_MAX_OPS, trace_program
from repro.errors import LintError, ReproError
from repro.runtime.executor import Job

if TYPE_CHECKING:
    from repro.analysis.cache import LintCache
    from repro.core.experiment import ExperimentConfig

#: Environment switch: set to any non-empty value to skip the pre-flight.
ENV_NO_LINT = "REPRO_NO_LINT"


def analyze_program(factory: Callable[[int, int], Iterator],
                    n_ranks: int, *,
                    communicators: dict[str, tuple[int, ...]] | None = None,
                    eager_threshold: float = 0.0,
                    subject: str = "program",
                    max_ops: int = DEFAULT_MAX_OPS) -> DiagnosticReport:
    """Statically check one rank-program factory.

    ``eager_threshold`` defaults to 0 — i.e. every send treated as
    rendezvous, the *strictest* deadlock model.  Pass the target
    network's threshold (as :func:`analyze_job` does) to permit
    eager-buffered cyclic sends exactly where the runtime does.
    """
    report = DiagnosticReport(subject)
    comms: dict[str, tuple[int, ...]] = {"world": tuple(range(n_ranks))}
    for name, members in (communicators or {}).items():
        members = tuple(members)
        if not members or len(set(members)) != len(members) or \
                any(not 0 <= r < n_ranks for r in members):
            report.add(Diagnostic(
                check="communicator-invalid", severity="error",
                message=f"communicator {name!r} has invalid members "
                        f"{members} for {n_ranks} ranks",
                hint="members must be unique ranks in 0..n_ranks-1",
            ))
            continue
        comms[name] = members

    traces = trace_program(factory, n_ranks, max_ops)
    report.extend(checks.check_programs(traces))
    report.extend(checks.check_domains(traces, n_ranks, comms))
    report.extend(checks.check_requests(traces))
    report.extend(checks.check_p2p_matching(traces, n_ranks))
    report.extend(checks.check_collectives(traces, comms))
    if not report.errors:
        # structure is sound — worth asking the order-aware question;
        # running it after structural errors would only cascade noise
        report.extend(find_deadlocks(
            traces, eager_threshold=eager_threshold, communicators=comms))
    return report


def analyze_job(job: Job,
                max_ops: int = DEFAULT_MAX_OPS) -> DiagnosticReport:
    """Statically check an assembled job against its own cluster."""
    report = analyze_program(
        job.program, job.placement.n_ranks,
        communicators=job.communicators,
        eager_threshold=float(
            job.cluster.network.rendezvous_threshold_bytes),
        subject=job.name, max_ops=max_ops,
    )
    report.extend(_check_kernel_refs(job))
    return report


def _check_kernel_refs(job: Job) -> list[Diagnostic]:
    """Every Compute must name a registered kernel (the runtime fails
    mid-run with SimulationError; the analyzer fails before it)."""
    from repro.analysis.trace import trace_rank
    from repro.runtime import program as ops

    known = set(job.kernels)
    out: list[Diagnostic] = []
    seen: set[str] = set()
    n = job.placement.n_ranks
    for rank in (0, n - 1) if n > 1 else (0,):
        trace = trace_rank(job.program, rank, n)
        for rec in trace.ops:
            if isinstance(rec.op, ops.Compute) and \
                    rec.op.kernel not in known and \
                    rec.op.kernel not in seen:
                seen.add(rec.op.kernel)
                out.append(Diagnostic(
                    check="unknown-kernel", severity="error",
                    rank=rec.rank, op_index=rec.index, op=rec.describe(),
                    message=f"Compute references unregistered kernel "
                            f"{rec.op.kernel!r}",
                    hint=f"registered kernels: {sorted(known)}",
                ))
    return out


def analyze_config(config: ExperimentConfig,
                   cache: LintCache | None = None,
                   max_ops: int = DEFAULT_MAX_OPS) -> DiagnosticReport:
    """Full pre-flight of one :class:`ExperimentConfig`.

    Placement feasibility reuses the runtime's own
    :class:`~repro.runtime.placement.JobPlacement` validation; any
    :class:`~repro.errors.ReproError` raised while assembling the
    cluster, placement, or job becomes a diagnostic.  ``cache`` is an
    optional :class:`~repro.analysis.cache.LintCache`.
    """
    from repro.core.cache import config_digest

    digest = config_digest(config)
    if cache is not None:
        cached = cache.get(digest)
        if cached is not None:
            return cached

    report = _analyze_config_fresh(config, max_ops)
    if cache is not None:
        cache.put(digest, report)
    return report


def _analyze_config_fresh(config: ExperimentConfig,
                          max_ops: int) -> DiagnosticReport:
    from repro.errors import PlacementError
    from repro.machine import catalog
    from repro.miniapps import by_name
    from repro.runtime.placement import JobPlacement

    subject = config.label()
    report = DiagnosticReport(subject)
    try:
        cluster = catalog.by_name(config.processor,
                                  n_nodes=config.n_nodes)
    except (KeyError, ReproError) as exc:
        report.add(Diagnostic(
            check="config-processor", severity="error",
            message=f"cannot build processor {config.processor!r}: {exc}",
            hint="see `repro list-processors`",
        ))
        return report
    try:
        app = by_name(config.app)
        app.dataset(config.dataset)
    except (KeyError, ReproError) as exc:
        report.add(Diagnostic(
            check="config-app", severity="error",
            message=f"cannot resolve app/dataset "
                    f"{config.app}/{config.dataset}: {exc}",
            hint="see `repro list-apps`",
        ))
        return report
    try:
        placement = JobPlacement(
            cluster, config.n_ranks, config.n_threads,
            allocation=config.allocation, binding=config.binding,
        )
    except PlacementError as exc:
        report.add(Diagnostic(
            check="placement-infeasible", severity="error",
            message=str(exc),
            hint="reduce ranks x threads, relax the binding stride, or "
                 "add nodes; domain-pack pads rank windows to CMG "
                 "boundaries and needs the extra headroom",
        ))
        return report
    try:
        job = app.build_job(
            cluster, placement, dataset=config.dataset,
            options=config.options, data_policy=config.data_policy,
        )
    except ReproError as exc:
        report.add(Diagnostic(
            check="config-job", severity="error",
            message=f"cannot assemble the job: {exc}",
            hint="the app rejects this rank count / dataset combination",
        ))
        return report
    job_report = analyze_job(job, max_ops)
    report.extend(job_report.diagnostics)
    return report


# ----------------------------------------------------------------------
# the pre-flight gate
# ----------------------------------------------------------------------
_enabled = not os.environ.get(ENV_NO_LINT)
_verdicts: dict[str, tuple[str, ...]] = {}      # digest -> error lines


def preflight_enabled() -> bool:
    return _enabled


def set_preflight(enabled: bool) -> None:
    """Enable/disable the pre-flight gate, propagating to worker
    processes via the environment."""
    global _enabled
    _enabled = enabled
    if enabled:
        os.environ.pop(ENV_NO_LINT, None)
    else:
        os.environ[ENV_NO_LINT] = "1"


def preflight(config: ExperimentConfig,
              lint_cache: LintCache | None = None) -> None:
    """Raise :class:`~repro.errors.LintError` if ``config`` has
    error-severity findings; warnings pass silently.

    Verdicts are memoized per config digest for the process lifetime, so
    sweeping the same config repeatedly pays for one analysis.
    """
    from repro.core.cache import config_digest

    digest = config_digest(config)
    cached = _verdicts.get(digest)
    if cached is not None:
        if cached:
            raise LintError("\n".join(cached))
        return
    report = analyze_config(config, cache=lint_cache)
    errors = report.errors
    if errors:
        lines = (f"pre-flight lint failed for {report.subject} "
                 f"({len(errors)} error(s); rerun with `repro lint` or "
                 f"skip with --no-lint):",)
        lines += tuple(d.render() for d in errors)
        _verdicts[digest] = lines
        raise LintError("\n".join(lines), diagnostics=tuple(errors))
    _verdicts[digest] = ()
