"""Static performance advisor: ECM-grounded anti-pattern analysis.

``repro lint`` (:mod:`repro.analysis.analyzer`) asks *will this config
run correctly*; ``repro advise`` asks *where will its time go, and which
placement/config choices are leaving performance on the table* — without
spending a single event-executor step.  Every finding is derived from
the closed-form model the analytic engine itself scores with
(:func:`repro.analytic.engine.config_breakdown`), so every quantitative
claim in a diagnostic cites the exact numbers the scoring pass uses:
ECM phase times per iteration, bandwidth-saturation knees, fork/join
overheads, collective algorithm times.

The ``perf-*`` rule catalog lives in :mod:`repro.analysis.rules`; one
worked example per rule is in DESIGN.md ("Static performance advisor").
Severity semantics:

* ``error`` — the config cannot execute at all
  (``perf-placement-infeasible``); :func:`is_feasible` is the
  autotuner-facing predicate built on this.
* ``warning`` — executable but a cheap change is predicted to win
  (cross-CMG thread spans, remote serial-init traffic, heavy load
  imbalance, collective domination, idle cores).
* ``info`` — model observations that explain the config's placement on
  the roofline (memory-/L2-boundedness with the saturating core count,
  gather-stride and working-set diagnoses) without implying a fix.

The opt-in pre-flight gate mirrors the lint gate: ``REPRO_ADVISE``
(``off``/``warn``/``error``) or :func:`set_advise_mode` select the mode
globally, ``run_config``/``run_sweep`` accept a per-call override, and
:func:`advise_gate` raises :class:`~repro.errors.AdviseError` when the
report has findings at or above the mode's severity cut (``warn``
blocks on errors, ``error`` blocks on warnings too).
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport

if TYPE_CHECKING:
    from repro.analysis.cache import LintCache
    from repro.analytic.engine import ConfigBreakdown, GroupCost
    from repro.analytic.profile import AppProfile
    from repro.compile.compiler import CompiledKernel
    from repro.core.experiment import ExperimentConfig
    from repro.machine.topology import Cluster
    from repro.runtime.placement import JobPlacement
from repro.errors import (
    AdviseError,
    ConfigurationError,
    PlacementError,
    ReproError,
)

#: Gate modes accepted by ``run_config``/``run_sweep``/the CLI.
ADVISE_MODES = ("off", "warn", "error")

#: Environment switch carrying the gate mode into sweep workers.
ENV_ADVISE = "REPRO_ADVISE"

# ---------------------------------------------------------------------------
# rule thresholds (module constants so tests and docs can cite them)
# ---------------------------------------------------------------------------
#: Groups below this fraction of their class's compute time are noise.
MIN_GROUP_FRACTION = 0.05
#: max/mean class-time skew above which load imbalance is a warning.
IMBALANCE_WARN = 1.25
#: Communication fraction of a class's step time that warrants a warning.
COLLECTIVE_WARN = 0.50
#: ... and the lower cut where it is still worth an info finding.
COLLECTIVE_INFO = 0.25
#: Cache-line utilization below which gather access is called out even
#: when the latency phase does not dominate (0.5 contiguity on a 256 B
#: A64FX line utilizes 52% of each fetch).
STRIDE_UTIL_WARN = 0.55
#: L2 hit fraction below which the working set counts as spilled.
SPILL_HIT_WARN = 0.50
#: Idle-core fraction of the allocated nodes that warrants a warning.
IDLE_WARN = 0.25


def check_mode(mode: str) -> str:
    if mode not in ADVISE_MODES:
        raise ConfigurationError(
            f"advise mode must be one of {ADVISE_MODES}, got {mode!r}"
        )
    return mode


def advise_mode() -> str:
    """The global gate mode (environment-backed, worker-propagating)."""
    return check_mode(os.environ.get(ENV_ADVISE) or "off")


def set_advise_mode(mode: str) -> None:
    """Set the global gate mode, propagating to worker processes."""
    check_mode(mode)
    if mode == "off":
        os.environ.pop(ENV_ADVISE, None)
    else:
        os.environ[ENV_ADVISE] = mode


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _ns(seconds: float) -> str:
    return f"{seconds * 1e9:.1f} ns/it"


def _gbs(bytes_per_s: float) -> str:
    return f"{bytes_per_s / 1e9:.1f} GB/s"


def _mib(n_bytes: float) -> str:
    return f"{n_bytes / 2**20:.2f} MiB"


def _significant_groups(
        breakdown: ConfigBreakdown) -> Iterator[tuple[int, GroupCost]]:
    """(class_idx, GroupCost) pairs carrying a meaningful time share."""
    for g in breakdown.groups:
        class_compute = breakdown.classes[g.class_idx].compute_s
        if class_compute <= 0:
            continue
        if g.seconds >= MIN_GROUP_FRACTION * class_compute:
            yield g.class_idx, g


def _best_per_kernel(groups: Iterable[GroupCost]) -> dict[str, GroupCost]:
    """Deduplicate groups to the costliest instance per kernel."""
    best: dict[str, GroupCost] = {}
    for g in groups:
        cur = best.get(g.kernel)
        if cur is None or g.seconds > cur.seconds:
            best[g.kernel] = g
    return best


# ---------------------------------------------------------------------------
# the analysis pass
# ---------------------------------------------------------------------------
def _advise_fresh(config: ExperimentConfig) -> DiagnosticReport:
    from repro.analytic import engine as analytic

    report = DiagnosticReport(config.label())

    # --- resolution + feasibility (never touches the event executor) ---
    try:
        cluster = analytic._cluster(config.processor, config.n_nodes)
    except (KeyError, ReproError) as exc:
        report.add(Diagnostic(
            check="config-processor", severity="error",
            message=f"cannot build processor {config.processor!r}: {exc}",
            hint="see `repro list-processors`",
        ))
        return report
    try:
        placement = analytic._placement(
            config.processor, config.n_nodes, config.n_ranks,
            config.n_threads, config.allocation, config.binding,
        )
    except PlacementError as exc:
        report.add(Diagnostic(
            check="perf-placement-infeasible", severity="error",
            message=f"{exc} ({config.n_ranks} ranks x {config.n_threads} "
                    f"threads on {cluster.n_nodes}x{cluster.cores_per_node} "
                    f"cores)",
            hint="reduce ranks x threads, relax the binding stride, or add "
                 "nodes; domain-pack pads rank windows to CMG boundaries "
                 "and needs the extra headroom",
        ))
        return report
    try:
        breakdown = analytic.config_breakdown(config)
    except ReproError as exc:
        report.add(Diagnostic(
            check="config-app", severity="error",
            message=f"cannot model {config.app}/{config.dataset}: {exc}",
            hint="see `repro list-apps`",
        ))
        return report

    profile = analytic._profile(config.app, config.dataset, config.n_ranks)
    compiled = analytic._compiled(config.app, config.dataset,
                                  config.options_preset, config.processor)
    census = placement.threads_per_domain
    per_dom_cores = cluster.node.chips[0].domains[0].n_cores

    _check_thread_spans(report, config, cluster, placement, profile,
                        per_dom_cores)
    _check_boundedness(report, cluster, placement, breakdown, profile)
    _check_access_patterns(report, cluster, breakdown, profile, compiled,
                           census, placement)
    _check_load_balance(report, breakdown)
    _check_collectives(report, breakdown)
    _check_subscription(report, config, cluster, placement)
    return report


def _check_thread_spans(report: DiagnosticReport, config: ExperimentConfig,
                        cluster: Cluster, placement: JobPlacement,
                        profile: AppProfile, per_dom_cores: int) -> None:
    """perf-cmg-span + perf-remote-traffic, per rank class."""
    from repro.runtime.openmp import fork_join_overhead

    for cls in profile.classes:
        spanned = placement.domains_spanned(cls.rep_rank)
        if spanned <= 1:
            continue
        if config.n_threads <= per_dom_cores:
            fj_span = fork_join_overhead(config.n_threads, spanned)
            fj_one = fork_join_overhead(config.n_threads, 1)
            report.add(Diagnostic(
                check="perf-cmg-span", severity="warning",
                rank=cls.rep_rank,
                message=f"rank {cls.rep_rank}'s {config.n_threads} threads "
                        f"span {spanned} CMGs although they fit in one "
                        f"({per_dom_cores} cores/CMG); fork/join rises to "
                        f"{fj_span * 1e6:.2f} us/region vs "
                        f"{fj_one * 1e6:.2f} us within one CMG",
                hint="align ranks to CMG boundaries "
                     "(allocation=domain-pack) or pick a ranks x threads "
                     "split that divides the CMG",
            ))
        if config.data_policy == "serial-init":
            home = placement.home_domain(cls.rep_rank)
            home_dom = cluster.node.chips[home[1]].domains[home[2]]
            census = placement.threads_per_domain
            home_active = max(1, census.get(home, 1))
            local = home_dom.memory.per_stream_bandwidth(home_active)
            chip = cluster.node.chips[home[1]]
            remote = local * chip.remote_access_fraction
            away = sum(
                1 for a in placement.thread_cores(cls.rep_rank)
                if (a.node, a.chip, a.domain) != home
            )
            report.add(Diagnostic(
                check="perf-remote-traffic", severity="warning",
                rank=cls.rep_rank,
                message=f"serial-init homes rank {cls.rep_rank}'s data on "
                        f"CMG {home[2]}; {away} of {config.n_threads} "
                        f"threads stream remotely at {_gbs(remote)} vs "
                        f"{_gbs(local)} local "
                        f"({chip.remote_access_fraction:.0%} ring penalty)",
                hint="use data_policy=first-touch, or keep each rank's "
                     "threads inside its home CMG",
            ))


def _check_boundedness(report: DiagnosticReport, cluster: Cluster,
                       placement: JobPlacement, breakdown: ConfigBreakdown,
                       profile: AppProfile) -> None:
    """perf-memory-bound + perf-l2-bound, per costly kernel."""
    significant = [g for _, g in _significant_groups(breakdown)]
    for kernel, g in sorted(_best_per_kernel(significant).items()):
        cls = profile.classes[g.class_idx]
        home = placement.home_domain(cls.rep_rank)
        dom = cluster.node.chips[home[1]].domains[home[2]]
        active = max(1, placement.threads_per_domain.get(home, 1))
        p = g.per_iter
        if g.bound == "dram":
            mem = dom.memory
            sat = max(1, math.ceil(mem.sustained_bandwidth
                                   / mem.single_stream_bandwidth))
            if active >= sat:
                headroom = (f"the {active} active cores already saturate "
                            f"the CMG (knee at {sat}); extra threads add "
                            f"no bandwidth")
            else:
                headroom = (f"{active} of the {sat} saturating cores are "
                            f"active; bandwidth headroom remains")
            report.add(Diagnostic(
                check="perf-memory-bound", severity="info",
                rank=cls.rep_rank,
                message=f"kernel {kernel!r}: DRAM phase {_ns(p['dram'])} "
                        f"vs compute {_ns(p['compute'])} "
                        f"(L2 {_ns(p['l2'])}, L1 {_ns(p['l1'])}) => "
                        f"memory-bound; {dom.memory.kind} sustains "
                        f"{_gbs(mem.sustained_bandwidth)} per CMG at "
                        f"{_gbs(mem.single_stream_bandwidth)}/stream, so "
                        f"{headroom}",
                hint="scatter threads across CMGs to reach more stacks, "
                     "or shrink DRAM traffic (blocking, streaming stores)",
            ))
        elif g.bound == "l2":
            report.add(Diagnostic(
                check="perf-l2-bound", severity="info",
                rank=cls.rep_rank,
                message=f"kernel {kernel!r}: L2 phase {_ns(p['l2'])} vs "
                        f"DRAM {_ns(p['dram'])} and compute "
                        f"{_ns(p['compute'])} => bound by the shared L2 "
                        f"({active} threads share "
                        f"{_mib(dom.l2.capacity_bytes)} per CMG)",
                hint="reduce L2 traffic (register blocking) or spread "
                     "threads over more CMGs to split the L2 load",
            ))


def _check_access_patterns(report: DiagnosticReport, cluster: Cluster,
                           breakdown: ConfigBreakdown, profile: AppProfile,
                           compiled: dict[str, CompiledKernel],
                           census: dict[tuple[int, int, int], int],
                           placement: JobPlacement) -> None:
    """perf-gather-stride + perf-working-set-spill, per costly kernel."""
    significant = [g for _, g in _significant_groups(breakdown)]
    for kernel, g in sorted(_best_per_kernel(significant).items()):
        try:
            lk = compiled[kernel].kernel
        except KeyError:      # unregistered kernels are lint's finding
            continue
        cls = profile.classes[g.class_idx]
        home = placement.home_domain(cls.rep_rank)
        dom = cluster.node.chips[home[1]].domains[home[2]]
        p = g.per_iter

        util = dom.l2.effective_line_utilization(lk.contiguous_fraction)
        if lk.contiguous_fraction < 1.0 and g.bound == "latency":
            report.add(Diagnostic(
                check="perf-gather-stride", severity="warning",
                rank=cls.rep_rank,
                message=f"kernel {kernel!r}: the exposed gather latency "
                        f"phase {_ns(p['latency'])} dominates (DRAM "
                        f"{_ns(p['dram'])}, compute {_ns(p['compute'])}); "
                        f"non-contiguous access (contiguous fraction "
                        f"{lk.contiguous_fraction:.2f}) uses {util:.0%} "
                        f"of each {dom.l2.line_bytes} B line => "
                        f"{1 / util:.1f}x traffic inflation below L1",
                hint="sort/reorder the indirection to raise spatial "
                     "locality, or use software pipelining to hide the "
                     "gather latency",
            ))
        elif util < STRIDE_UTIL_WARN:
            report.add(Diagnostic(
                check="perf-gather-stride", severity="info",
                rank=cls.rep_rank,
                message=f"kernel {kernel!r}: gather access (contiguous "
                        f"fraction {lk.contiguous_fraction:.2f}) consumes "
                        f"{util:.0%} of each {dom.l2.line_bytes} B line "
                        f"=> {1 / util:.1f}x traffic inflation below L1 "
                        f"(exposed latency {_ns(p['latency'])} vs "
                        f"{g.bound} phase {_ns(p[g.bound])})",
                hint="sort/reorder the indirection to raise spatial "
                     "locality",
            ))

        if lk.working_set_bytes > 0 and lk.streaming_fraction < 1.0:
            pg = profile.classes[g.class_idx].compute[
                breakdown.class_groups(g.class_idx).index(g)]
            ws = lk.working_set_bytes * pg.working_set_scale
            hit = dom.l2.hit_fraction(ws)
            if hit < SPILL_HIT_WARN:
                severity = "warning" if g.bound == "dram" else "info"
                report.add(Diagnostic(
                    check="perf-working-set-spill", severity=severity,
                    rank=cls.rep_rank,
                    message=f"kernel {kernel!r}: per-thread working set "
                            f"{_mib(ws)} vs {_mib(dom.l2.capacity_bytes)} "
                            f"shared L2 => {hit:.0%} L2 hit rate; reuse "
                            f"traffic falls through to DRAM (DRAM phase "
                            f"{_ns(p['dram'])})",
                    hint="block the loop to an L2-resident tile, or give "
                         "each thread a smaller partition (more ranks, "
                         "fewer threads)",
                ))


def _check_load_balance(report: DiagnosticReport,
                        breakdown: ConfigBreakdown) -> None:
    """perf-load-imbalance across rank equivalence classes."""
    if len(breakdown.classes) < 2:
        return
    totals = [c.total_s for c in breakdown.classes]
    mean = sum(t * c.n_ranks for t, c in zip(totals, breakdown.classes)) \
        / sum(c.n_ranks for c in breakdown.classes)
    if mean <= 0:
        return
    worst = max(breakdown.classes, key=lambda c: c.total_s)
    skew = worst.total_s / mean
    if skew > IMBALANCE_WARN:
        report.add(Diagnostic(
            check="perf-load-imbalance", severity="warning",
            rank=worst.rep_rank,
            message=f"rank class {worst.class_idx} (rep rank "
                    f"{worst.rep_rank}, {worst.n_ranks} rank(s)) finishes "
                    f"at {worst.total_s * 1e3:.2f} ms vs "
                    f"{mean * 1e3:.2f} ms rank-weighted mean "
                    f"({skew:.2f}x skew); every other class waits at the "
                    f"next synchronization point",
            hint="rebalance the decomposition or shift work off the "
                 "named class",
        ))


def _check_collectives(report: DiagnosticReport,
                       breakdown: ConfigBreakdown) -> None:
    """perf-collective-dominated, per rank class."""
    for c in breakdown.classes:
        if c.total_s <= 0 or not c.comm_items:
            continue
        frac = c.comm_s / c.total_s
        if frac < COLLECTIVE_INFO:
            continue
        severity = "warning" if frac >= COLLECTIVE_WARN else "info"
        label, seconds = max(c.comm_items, key=lambda item: item[1])
        report.add(Diagnostic(
            check="perf-collective-dominated", severity=severity,
            rank=c.rep_rank,
            message=f"communication is {frac:.0%} of rank class "
                    f"{c.class_idx}'s step time "
                    f"({c.comm_s * 1e3:.2f} of {c.total_s * 1e3:.2f} ms); "
                    f"largest item: {label} at {seconds * 1e3:.2f} ms",
            hint="fewer, larger messages; overlap exchanges with "
                 "compute; or use fewer ranks x more threads",
        ))


def _check_subscription(report: DiagnosticReport, config: ExperimentConfig,
                        cluster: Cluster,
                        placement: JobPlacement) -> None:
    """perf-undersubscribed: idle cores on the allocated nodes."""
    nodes_used = {a.node for addrs in placement.thread_map.values()
                  for a in addrs}
    available = len(nodes_used) * cluster.cores_per_node
    used = config.n_ranks * config.n_threads
    idle = available - used
    if idle <= 0:
        return
    frac = idle / available
    severity = "warning" if frac >= IDLE_WARN else "info"
    report.add(Diagnostic(
        check="perf-undersubscribed", severity=severity,
        message=f"placement uses {used} of {available} cores on "
                f"{len(nodes_used)} allocated node(s) ({frac:.0%} idle)",
        hint="raise ranks x threads to cover the node, or release the "
             "unused nodes",
    ))


# ---------------------------------------------------------------------------
# caching front door + gate
# ---------------------------------------------------------------------------
_memo: dict[str, DiagnosticReport] = {}


def clear_memos() -> None:
    """Drop process-level advisor memos (tests patching the model)."""
    _memo.clear()


def _advise_digest(config: ExperimentConfig) -> str:
    from repro.core.cache import config_digest

    # Tagged so advise reports can never alias lint reports for the same
    # config inside one LintCache file.
    return config_digest((config, "advise"))


def advise_config(config: ExperimentConfig,
                  cache: LintCache | None = None) -> DiagnosticReport:
    """Statically analyze one config's predicted performance.

    ``cache`` is an optional :class:`~repro.analysis.cache.LintCache`;
    advise reports share its file with lint reports under distinct
    digests, and both are invalidated by model-fingerprint or
    analyzer-fingerprint changes.  Verdicts are additionally memoized
    per process, so the autotuner can call :func:`is_feasible` in a
    tight loop.
    """
    digest = _advise_digest(config)
    report = _memo.get(digest)
    if report is not None:
        return report
    if cache is not None:
        report = cache.get(digest)
        if report is not None:
            _memo[digest] = report
            return report
    report = _advise_fresh(config)
    _memo[digest] = report
    if cache is not None:
        cache.put(digest, report)
    return report


def is_feasible(config: ExperimentConfig,
                cache: LintCache | None = None) -> Diagnostic | None:
    """The autotuner's pruning predicate.

    Returns ``None`` when the config can execute, else the first
    error-severity :class:`Diagnostic` explaining why it cannot —
    derived entirely from the closed-form model, never from the event
    executor.
    """
    report = advise_config(config, cache)
    errors = report.errors
    return errors[0] if errors else None


def advise_gate(config: ExperimentConfig,
                lint_cache: LintCache | None = None,
                mode: str | None = None) -> None:
    """Pre-flight gate for ``run_config``/``run_sweep``.

    Raises :class:`~repro.errors.AdviseError` when the report carries
    findings at or above the mode's cut: ``warn`` blocks on errors,
    ``error`` blocks on warnings too.  ``mode=None`` reads the global
    :func:`advise_mode`; ``off`` is a no-op.
    """
    mode = advise_mode() if mode is None else check_mode(mode)
    if mode == "off":
        return
    report = advise_config(config, cache=lint_cache)
    cut = "error" if mode == "warn" else "warning"
    blocking = report.at_least(cut)
    if blocking:
        lines = [f"pre-flight advise failed for {report.subject} "
                 f"({len(blocking)} finding(s) at severity >= {cut}; "
                 f"inspect with `repro advise` or disable with "
                 f"advise='off'):"]
        lines.extend(d.render() for d in blocking)
        raise AdviseError("\n".join(lines), diagnostics=tuple(blocking))
