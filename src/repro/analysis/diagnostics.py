"""Structured findings of the static communication analyzer.

A :class:`Diagnostic` is one concrete problem found before execution —
an unmatched receive, a diverging collective sequence, an infeasible
placement — carrying enough context (severity, check id, rank, op index,
rendered op, fix hint) for a user to act on it without re-running
anything.  A :class:`DiagnosticReport` is the ordered collection one
analysis pass produces; ``repro lint`` renders it, the pre-flight gate in
:mod:`repro.core.runner` raises :class:`~repro.errors.LintError` when it
contains errors, and the lint cache serializes it by config digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Finding severities, most severe first.  ``error`` findings block a run
#: (the program would crash, deadlock, or not place); ``warning`` findings
#: are suspicious but executable.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    #: Stable check identifier, e.g. ``"p2p-unmatched-recv"``.
    check: str
    #: ``"error"`` or ``"warning"``.
    severity: str
    #: Human-readable statement of the problem.
    message: str
    #: Rank the finding anchors to (None for whole-job findings).
    rank: int | None = None
    #: 0-based index of the offending op in that rank's program.
    op_index: int | None = None
    #: Rendered offending op (``describe_op``), empty for config findings.
    op: str = ""
    #: Suggested fix.
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"diagnostic severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )
        if not self.check:
            raise ConfigurationError("diagnostic needs a check id")

    # ------------------------------------------------------------------
    def location(self) -> str:
        """``"rank 3, op #42"`` (whatever parts are known)."""
        parts = []
        if self.rank is not None:
            parts.append(f"rank {self.rank}")
        if self.op_index is not None:
            parts.append(f"op #{self.op_index}")
        return ", ".join(parts)

    def render(self) -> str:
        """Multi-line rendering for terminal output."""
        loc = self.location()
        head = f"{self.severity.upper():<7} [{self.check}]"
        if loc:
            head += f" {loc}:"
        lines = [f"{head} {self.message}"]
        if self.op:
            lines.append(f"        op:   {self.op}")
        if self.hint:
            lines.append(f"        hint: {self.hint}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = {"check": self.check, "severity": self.severity,
             "message": self.message}
        if self.rank is not None:
            d["rank"] = self.rank
        if self.op_index is not None:
            d["op_index"] = self.op_index
        if self.op:
            d["op"] = self.op
        if self.hint:
            d["hint"] = self.hint
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Diagnostic":
        return cls(
            check=d["check"], severity=d["severity"], message=d["message"],
            rank=d.get("rank"), op_index=d.get("op_index"),
            op=d.get("op", ""), hint=d.get("hint", ""),
        )


@dataclass
class DiagnosticReport:
    """Ordered findings of one analysis pass."""

    #: What was analyzed (``"ccs-qcd/as-is 4x12 on A64FX"``).
    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when the report is completely clean."""
        return not self.diagnostics

    def by_check(self, check: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.check == check]

    # ------------------------------------------------------------------
    def summary(self) -> str:
        if self.ok:
            return f"{self.subject}: clean"
        return (f"{self.subject}: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s)")

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {line}" for d in self.diagnostics
                     for line in d.render().splitlines())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"subject": self.subject,
                "diagnostics": [d.to_dict() for d in self.diagnostics]}

    @classmethod
    def from_dict(cls, d: dict) -> "DiagnosticReport":
        return cls(
            subject=d["subject"],
            diagnostics=[Diagnostic.from_dict(x)
                         for x in d["diagnostics"]],
        )
