"""Structured findings of the static analyzers (lint and advise).

A :class:`Diagnostic` is one concrete finding produced before execution —
an unmatched receive, a diverging collective sequence, an infeasible
placement, a memory-bound kernel with placement headroom — carrying
enough context (severity, check id, rank, op index, rendered op, fix
hint) for a user to act on it without re-running anything.  A
:class:`DiagnosticReport` is the ordered collection one analysis pass
produces; ``repro lint`` / ``repro advise`` render it, the pre-flight
gates in :mod:`repro.core.runner` raise
:class:`~repro.errors.LintError` / :class:`~repro.errors.AdviseError`
when it contains blocking findings, and the lint cache serializes it by
config digest.

Serialization is deterministic by construction: :meth:`Diagnostic.to_dict`
emits keys in one canonical order and :meth:`DiagnosticReport.to_dict`
sorts findings by :meth:`Diagnostic.sort_key` (rule id first), so two
runs producing the same findings — in whatever discovery order, on
whatever Python version — serialize to byte-identical artifacts that
diff cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigurationError

#: Finding severities, most severe first.  ``error`` findings block a run
#: (the program would crash, deadlock, or not place); ``warning`` findings
#: are suspicious but executable; ``info`` findings are advisory model
#: observations (e.g. "this kernel is memory-bound") that explain where a
#: configuration's time goes without implying anything is wrong.
SEVERITIES = ("error", "warning", "info")

#: Severity -> rank (lower = more severe), for sorting and filtering.
SEVERITY_RANK = {name: i for i, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    #: Stable check identifier, e.g. ``"p2p-unmatched-recv"``.
    check: str
    #: ``"error"``, ``"warning"``, or ``"info"``.
    severity: str
    #: Human-readable statement of the problem.
    message: str
    #: Rank the finding anchors to (None for whole-job findings).
    rank: int | None = None
    #: 0-based index of the offending op in that rank's program.
    op_index: int | None = None
    #: Rendered offending op (``describe_op``), empty for config findings.
    op: str = ""
    #: Suggested fix.
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"diagnostic severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )
        if not self.check:
            raise ConfigurationError("diagnostic needs a check id")

    # ------------------------------------------------------------------
    def location(self) -> str:
        """``"rank 3, op #42"`` (whatever parts are known)."""
        parts = []
        if self.rank is not None:
            parts.append(f"rank {self.rank}")
        if self.op_index is not None:
            parts.append(f"op #{self.op_index}")
        return ", ".join(parts)

    def render(self) -> str:
        """Multi-line rendering for terminal output."""
        loc = self.location()
        head = f"{self.severity.upper():<7} [{self.check}]"
        if loc:
            head += f" {loc}:"
        lines = [f"{head} {self.message}"]
        if self.op:
            lines.append(f"        op:   {self.op}")
        if self.hint:
            lines.append(f"        hint: {self.hint}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

    # ------------------------------------------------------------------
    def sort_key(self) -> tuple:
        """Stable artifact ordering: rule id, then severity, then anchor.

        ``None`` anchors sort before numbered ones, so whole-job findings
        lead their rule's group.  The message is the final tiebreaker —
        two runs emitting the same findings serialize identically however
        the analysis discovered them.
        """
        return (
            self.check,
            SEVERITY_RANK[self.severity],
            self.rank is not None, self.rank or 0,
            self.op_index is not None, self.op_index or 0,
            self.message,
        )

    def to_dict(self) -> dict:
        # Canonical key order (check, severity, message, rank, op_index,
        # op, hint): insertion-ordered dicts keep json.dumps output
        # deterministic even without sort_keys.
        d = {"check": self.check, "severity": self.severity,
             "message": self.message}
        if self.rank is not None:
            d["rank"] = self.rank
        if self.op_index is not None:
            d["op_index"] = self.op_index
        if self.op:
            d["op"] = self.op
        if self.hint:
            d["hint"] = self.hint
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Diagnostic":
        return cls(
            check=d["check"], severity=d["severity"], message=d["message"],
            rank=d.get("rank"), op_index=d.get("op_index"),
            op=d.get("op", ""), hint=d.get("hint", ""),
        )


@dataclass
class DiagnosticReport:
    """Ordered findings of one analysis pass."""

    #: What was analyzed (``"ccs-qcd/as-is 4x12 on A64FX"``).
    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def ok(self) -> bool:
        """True when the report is completely clean."""
        return not self.diagnostics

    def by_check(self, check: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.check == check]

    def at_least(self, severity: str) -> list[Diagnostic]:
        """Findings at or above ``severity`` (``"warning"`` means
        errors + warnings)."""
        if severity not in SEVERITY_RANK:
            raise ConfigurationError(
                f"severity must be one of {SEVERITIES}, got {severity!r}"
            )
        cut = SEVERITY_RANK[severity]
        return [d for d in self.diagnostics
                if SEVERITY_RANK[d.severity] <= cut]

    # ------------------------------------------------------------------
    def summary(self) -> str:
        if self.ok:
            return f"{self.subject}: clean"
        text = (f"{self.subject}: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s)")
        infos = self.infos
        if infos:
            text += f", {len(infos)} info(s)"
        return text

    def render(self, min_severity: str = "info") -> str:
        shown = self.at_least(min_severity)
        lines = [self.summary()]
        lines.extend(f"  {line}" for d in shown
                     for line in d.render().splitlines())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        ordered = sorted(self.diagnostics, key=Diagnostic.sort_key)
        return {"subject": self.subject,
                "diagnostics": [d.to_dict() for d in ordered]}

    @classmethod
    def from_dict(cls, d: dict) -> "DiagnosticReport":
        return cls(
            subject=d["subject"],
            diagnostics=[Diagnostic.from_dict(x)
                         for x in d["diagnostics"]],
        )
