"""Static analysis: pre-flight lint and performance advice for rank
programs, placements, and experiment configs.

The runtime deadlocks *loudly* when a program is wrong — but only after
burning the wall-clock that led up to the wedge.  This package answers
the same questions **before** execution, along two complementary axes:

**Correctness** (``repro lint``, :mod:`~repro.analysis.analyzer`) —
symbolically replays each rank's program generator (no simulated time)
and checks the whole communication structure:

* point-to-point matching per (destination, tag) FIFO channel,
  honoring ``ANY_SOURCE`` (:mod:`~repro.analysis.checks`);
* collective congruence across communicator members;
* request-handle hygiene (waits on non-requests, double/never waited);
* rank/tag domain validity;
* order-aware deadlock detection under the runtime's exact
  eager/rendezvous split (:mod:`~repro.analysis.deadlock`);
* placement feasibility, reusing the runtime's own
  :class:`~repro.runtime.placement.JobPlacement` validation;
* kernel-reference validity.

**Performance** (``repro advise``, :mod:`~repro.analysis.advisor`) —
consumes the closed-form model of :mod:`repro.analytic` and reports
where a config's time is predicted to go and which choices leave
performance on the table: infeasible placements, cross-CMG thread
spans, remote serial-init traffic, ECM phase domination with saturating
core counts, load imbalance across rank classes, gather-stride and
working-set anti-patterns, collective-dominated phases, idle cores.
:func:`~repro.analysis.advisor.is_feasible` is the autotuner-facing
pruning predicate built on the same pass.

Findings are structured :class:`~repro.analysis.diagnostics.Diagnostic`
records under the rule ids of :mod:`~repro.analysis.rules`, rendered by
``repro lint`` / ``repro advise`` and enforced as cheap pre-flight
gates by ``run_config``/``run_sweep``
(:func:`~repro.analysis.analyzer.preflight`, always on;
:func:`~repro.analysis.advisor.advise_gate`, opt-in), with verdicts
cached next to the sweep result cache by config digest and invalidated
by model- or analyzer-fingerprint changes.
"""

from repro.analysis.advisor import (
    ADVISE_MODES,
    advise_config,
    advise_gate,
    advise_mode,
    is_feasible,
    set_advise_mode,
)
from repro.analysis.analyzer import (
    analyze_config,
    analyze_job,
    analyze_program,
    preflight,
    preflight_enabled,
    set_preflight,
)
from repro.analysis.cache import LintCache, lint_cache_for
from repro.analysis.diagnostics import SEVERITIES, SEVERITY_RANK, \
    Diagnostic, DiagnosticReport
from repro.analysis.rules import (
    ALL_RULES,
    LINT_RULES,
    PERF_RULES,
    analyzer_fingerprint,
)
from repro.analysis.trace import trace_program, trace_rank

__all__ = [
    "ADVISE_MODES",
    "ALL_RULES",
    "LINT_RULES",
    "PERF_RULES",
    "SEVERITIES",
    "SEVERITY_RANK",
    "Diagnostic",
    "DiagnosticReport",
    "LintCache",
    "advise_config",
    "advise_gate",
    "advise_mode",
    "analyze_config",
    "analyze_job",
    "analyze_program",
    "analyzer_fingerprint",
    "is_feasible",
    "lint_cache_for",
    "preflight",
    "preflight_enabled",
    "set_advise_mode",
    "set_preflight",
    "trace_program",
    "trace_rank",
]
