"""Static communication analysis: pre-flight lint for rank programs,
placements, and experiment configs.

The runtime deadlocks *loudly* when a program is wrong — but only after
burning the wall-clock that led up to the wedge.  This package answers
the same questions **before** execution, by symbolically replaying each
rank's program generator (no simulated time) and checking the whole
communication structure:

* point-to-point matching per (destination, tag) FIFO channel,
  honoring ``ANY_SOURCE`` (:mod:`~repro.analysis.checks`);
* collective congruence across communicator members;
* request-handle hygiene (waits on non-requests, double/never waited);
* rank/tag domain validity;
* order-aware deadlock detection under the runtime's exact
  eager/rendezvous split (:mod:`~repro.analysis.deadlock`);
* placement feasibility, reusing the runtime's own
  :class:`~repro.runtime.placement.JobPlacement` validation;
* kernel-reference validity.

Findings are structured :class:`~repro.analysis.diagnostics.Diagnostic`
records rendered by ``repro lint`` and enforced as a cheap pre-flight by
``run_config``/``run_sweep`` (see :func:`~repro.analysis.analyzer.preflight`),
with verdicts cached next to the sweep result cache by config digest.
"""

from repro.analysis.analyzer import (
    analyze_config,
    analyze_job,
    analyze_program,
    preflight,
    preflight_enabled,
    set_preflight,
)
from repro.analysis.cache import LintCache, lint_cache_for
from repro.analysis.diagnostics import SEVERITIES, Diagnostic, \
    DiagnosticReport
from repro.analysis.trace import trace_program, trace_rank

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "DiagnosticReport",
    "LintCache",
    "analyze_config",
    "analyze_job",
    "analyze_program",
    "lint_cache_for",
    "preflight",
    "preflight_enabled",
    "set_preflight",
    "trace_program",
    "trace_rank",
]
