"""Symbolic scheduling: order-aware deadlock detection before any run.

The count-matching checks in :mod:`repro.analysis.checks` are
order-blind; this module replays the traced op streams against a
*timeless* abstraction of the runtime's matching rules — the same
eager/rendezvous protocol split, per-destination FIFO matching with
``ANY_SOURCE`` wildcards, and all-members-arrive collective semantics as
:class:`~repro.runtime.mpi.SimMPI` — advancing every rank as far as its
blocking operations allow.  If the system wedges with unexecuted ops,
the stuck ranks and what each one is waiting for become ``deadlock``
diagnostics: the classic cyclic rendezvous ``Send`` ring is reported
with the cycle visible in the wait-for descriptions, while the same ring
below the eager threshold completes silently (no false positive —
exactly like the runtime and real MPI eager buffering).

The scheduler executes each op at most once, so it terminates in
O(total ops) work regardless of program shape.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.trace import ProgramTrace, TracedOp, TracedRequest
from repro.runtime import program as ops

#: Hint attached to every deadlock diagnostic.
_HINT = ("break the wait cycle: post receives before sends, use "
         "Isend/Irecv + WaitAll (the halo-exchange idiom), or keep "
         "messages below the eager threshold")


class _Pending:
    """One posted-but-unmatched send or receive."""

    __slots__ = ("src", "tag", "token")

    def __init__(self, src: int, tag: int, token: object) -> None:
        self.src = src          # may be ANY_SOURCE for receives
        self.tag = tag
        self.token = token      # completes when matched


class _CollPending:
    """One collective with some members still to arrive."""

    __slots__ = ("arrived", "tokens")

    def __init__(self) -> None:
        self.arrived: set[int] = set()
        self.tokens: list[object] = []


class _Scheduler:
    def __init__(self, traces: dict[int, ProgramTrace],
                 eager_threshold: float,
                 communicators: dict[str, tuple[int, ...]]) -> None:
        self.traces = traces
        self.eager = eager_threshold
        self.comms = communicators
        # completed tokens, held by strong reference: tracking by id()
        # alone would break when CPython reuses a freed token's id
        self.done: set[object] = set()
        self.sends: dict[int, list[_Pending]] = {r: [] for r in traces}
        self.recvs: dict[int, list[_Pending]] = {r: [] for r in traces}
        self.coll: dict[str, _CollPending] = {}
        self.pc = {r: 0 for r in traces}
        #: rank -> (TracedOp, [unfinished tokens]) while blocked
        self.blocked: dict[int, tuple[TracedOp, list[object]]] = {}
        #: findings made while scheduling (e.g. collective re-entry)
        self.extra: list[Diagnostic] = []
        self._current: TracedOp | None = None

    # ------------------------------------------------------------------
    # matching (timeless mirror of SimMPI's FIFO rules)
    # ------------------------------------------------------------------
    def _complete(self, token: object) -> None:
        self.done.add(token)

    def _post_send(self, dst: int, src: int, tag: int, size: float,
                   token: object) -> None:
        if size < self.eager:
            self._complete(token)       # eager: completes on buffering
        queue = self.recvs[dst]
        for i, rp in enumerate(queue):
            if rp.tag == tag and rp.src in (src, ops.ANY_SOURCE):
                queue.pop(i)
                self._complete(token)
                self._complete(rp.token)
                return
        self.sends[dst].append(_Pending(src, tag, token))

    def _post_recv(self, dst: int, src: int, tag: int,
                   token: object) -> None:
        queue = self.sends[dst]
        for i, sp in enumerate(queue):
            if sp.tag == tag and src in (sp.src, ops.ANY_SOURCE):
                queue.pop(i)
                self._complete(sp.token)
                self._complete(token)
                return
        self.recvs[dst].append(_Pending(src, tag, token))

    def _arrive_collective(self, rank: int, op: Any,
                           token: object) -> None:
        members = self.comms.get(op.comm)
        if members is None or rank not in members:
            self._complete(token)       # already flagged by check_domains
            return
        state = self.coll.setdefault(op.comm, _CollPending())
        if rank in state.arrived:
            # re-entry before release: a second collective issued on the
            # comm while the rank's earlier (nonblocking) one is still
            # pending — the runtime raises CommunicatorError here under
            # the same schedule
            rec = self._current
            self.extra.append(Diagnostic(
                check="collective-reentry", severity="error",
                rank=rank,
                op_index=rec.index if rec is not None else None,
                op=rec.describe() if rec is not None else "",
                message=f"rank {rank} enters a collective on {op.comm!r} "
                        f"again before its previous nonblocking "
                        f"collective completed",
                hint="WaitAll the previous IAllreduce/IBarrier before "
                     "issuing the next collective on the same "
                     "communicator",
            ))
            self._complete(token)
            return
        state.arrived.add(rank)
        state.tokens.append(token)
        if len(state.arrived) == len(members):
            for t in state.tokens:
                self._complete(t)
            del self.coll[op.comm]

    # ------------------------------------------------------------------
    def _issue(self, rank: int, rec: TracedOp) -> list[object]:
        """Execute one op; returns the tokens it blocks on (empty =
        continues immediately)."""
        op = rec.op
        self._current = rec
        n_ranks = len(self.traces)

        def valid(peer: int) -> bool:
            return 0 <= peer < n_ranks and peer != rank

        if isinstance(op, (ops.Isend, ops.Send)):
            token = rec.request if rec.request is not None else object()
            if valid(op.dst):
                self._post_send(op.dst, rank, op.tag, op.size_bytes, token)
            else:
                self._complete(token)   # flagged by check_domains
            if isinstance(op, ops.Send):
                return [token]
            return []
        if isinstance(op, (ops.Irecv, ops.Recv)):
            token = rec.request if rec.request is not None else object()
            if op.src == ops.ANY_SOURCE or valid(op.src):
                self._post_recv(rank, op.src, op.tag, token)
            else:
                self._complete(token)
            if isinstance(op, ops.Recv):
                return [token]
            return []
        if isinstance(op, ops.Sendrecv):
            stok, rtok = object(), object()
            if valid(op.dst):
                self._post_send(op.dst, rank, op.send_tag, op.size_bytes,
                                stok)
            else:
                self._complete(stok)
            if op.src == ops.ANY_SOURCE or valid(op.src):
                self._post_recv(rank, op.src, op.recv_tag, rtok)
            else:
                self._complete(rtok)
            return [stok, rtok]
        if isinstance(op, ops.WaitAll):
            return [item for item in op.requests
                    if isinstance(item, TracedRequest)]
        if isinstance(op, ops.NONBLOCKING_COLLECTIVE_OPS):
            token = rec.request if rec.request is not None else object()
            self._arrive_collective(rank, op, token)
            return []
        if isinstance(op, ops.COLLECTIVE_OPS):
            token = object()
            self._arrive_collective(rank, op, token)
            return [token]
        return []                       # local op: free under abstraction

    def _advance(self, rank: int) -> bool:
        """Run one rank as far as possible; True if any op executed or a
        blocked wait resolved."""
        progressed = False
        if rank in self.blocked:
            rec, tokens = self.blocked[rank]
            tokens = [t for t in tokens if t not in self.done]
            if tokens:
                self.blocked[rank] = (rec, tokens)
                return False
            del self.blocked[rank]
            progressed = True
        trace = self.traces[rank].ops
        while self.pc[rank] < len(trace):
            rec = trace[self.pc[rank]]
            self.pc[rank] += 1
            progressed = True
            waits = [t for t in self._issue(rank, rec)
                     if t not in self.done]
            if waits:
                self.blocked[rank] = (rec, waits)
                break
        return progressed

    # ------------------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        ranks = sorted(self.traces)
        progress = True
        while progress:
            progress = False
            for rank in ranks:
                if self._advance(rank):
                    progress = True
        return self.extra + [self._stuck_diag(rank) for rank in ranks
                             if rank in self.blocked]

    def _stuck_diag(self, rank: int) -> Diagnostic:
        rec, tokens = self.blocked[rank]
        return Diagnostic(
            check="deadlock", severity="error",
            rank=rank, op_index=rec.index, op=rec.describe(),
            message=f"rank {rank} blocks forever on {rec.describe()}: "
                    f"{self._explain(rank, rec, tokens)}",
            hint=_HINT,
        )

    def _explain(self, rank: int, rec: TracedOp,
                 tokens: list[object]) -> str:
        op = rec.op
        if isinstance(op, ops.Send):
            return (f"rendezvous-size send; rank {op.dst} never posts the "
                    f"matching receive (tag {op.tag})")
        if isinstance(op, ops.Recv):
            src = "ANY_SOURCE" if op.src == ops.ANY_SOURCE else op.src
            return f"no send from {src} with tag {op.tag} remains"
        if isinstance(op, ops.Sendrecv):
            return "its send and/or receive half never matches"
        if isinstance(op, ops.WaitAll):
            unfinished = [t.describe() for t in tokens
                          if isinstance(t, TracedRequest)]
            return "unfinished: " + "; ".join(unfinished[:4]) + \
                ("; ..." if len(unfinished) > 4 else "")
        if ops.is_collective(op):
            state = self.coll.get(op.comm)
            members = self.comms.get(op.comm, ())
            if state is not None:
                missing = sorted(set(members) - state.arrived)
                return (f"collective on {op.comm!r} waits for ranks "
                        f"{missing[:8]}")
            return f"collective on {op.comm!r} never forms"
        return "blocked"                # pragma: no cover - exhaustive above


def find_deadlocks(traces: dict[int, ProgramTrace], *,
                   eager_threshold: float,
                   communicators: dict[str, tuple[int, ...]]
                   ) -> list[Diagnostic]:
    """Symbolically schedule the traced programs; diagnostics for every
    rank that can never finish."""
    return _Scheduler(traces, eager_threshold, communicators).run()
