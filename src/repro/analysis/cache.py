"""Persistent lint-result cache, living next to the sweep result cache.

Analysis verdicts are keyed exactly like simulated rows: config digest x
model fingerprint (:mod:`repro.core.cache`).  A ``lint.jsonl`` file sits
beside ``results.jsonl`` in the same cache directory, so one
``--cache-dir`` governs both, and any model change invalidates both at
once through the shared fingerprint.

Records additionally carry the **analyzer fingerprint**
(:func:`repro.analysis.rules.analyzer_fingerprint`) — a digest of the
rule catalog plus a behaviour version.  A model change invalidates
verdicts because the *subject* changed; an analyzer upgrade invalidates
them because the *checks* changed.  Without the second tag, a cache
written by an older analyzer would keep serving "clean" verdicts that a
newer check would reject.

Verdicts are tiny (usually ``[]``), so the in-memory layer is a plain
dict loaded once per process; :func:`lint_cache_for` memoizes one
instance per directory so repeated ``run_config`` calls share a single
load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.rules import analyzer_fingerprint
from repro.core.cache import CACHE_FORMAT, default_cache_dir, \
    model_fingerprint


class LintCache:
    """Config-digest-addressed store of :class:`DiagnosticReport`."""

    __slots__ = ("directory", "_mem", "_loaded", "_fingerprint")

    FILENAME = "lint.jsonl"

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self._mem: dict[str, DiagnosticReport] = {}
        self._loaded = False
        self._fingerprint: str | None = None

    @property
    def path(self) -> Path:
        return self.directory / self.FILENAME

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = model_fingerprint()
        return self._fingerprint

    # ------------------------------------------------------------------
    def _load(self) -> None:
        self._loaded = True
        try:
            text = self.path.read_text()
        except OSError:
            return
        fp = self.fingerprint
        afp = analyzer_fingerprint()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                if rec.get("format") != CACHE_FORMAT or rec.get("fp") != fp \
                        or rec.get("analyzer") != afp:
                    continue    # stale model or stale analyzer: re-analyze
                self._mem[rec["key"]] = \
                    DiagnosticReport.from_dict(rec["report"])
            except (ValueError, KeyError, TypeError):
                continue            # corrupt/truncated line: skip

    def get(self, digest: str) -> DiagnosticReport | None:
        if not self._loaded:
            self._load()
        return self._mem.get(digest)

    def put(self, digest: str, report: DiagnosticReport) -> None:
        if not self._loaded:
            self._load()
        if digest in self._mem:
            self._mem[digest] = report
            return
        self._mem[digest] = report
        rec = {"format": CACHE_FORMAT, "fp": self.fingerprint,
               "analyzer": analyzer_fingerprint(),
               "key": digest, "report": report.to_dict()}
        line = json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
        self.directory.mkdir(parents=True, exist_ok=True)
        # single O_APPEND write: whole-line atomicity under concurrency,
        # same policy as ResultCache._append
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def __len__(self) -> int:
        if not self._loaded:
            self._load()
        return len(self._mem)

    def clear(self) -> None:
        self._mem.clear()
        self._loaded = True
        try:
            self.path.unlink()
        except OSError:
            pass


_instances: dict[Path, LintCache] = {}


def lint_cache_for(directory: str | Path | None) -> LintCache:
    """One shared :class:`LintCache` per directory (load the file once)."""
    path = Path(directory) if directory is not None else default_cache_dir()
    cache = _instances.get(path)
    if cache is None:
        cache = _instances[path] = LintCache(path)
    return cache
