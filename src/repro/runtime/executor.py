"""Run rank programs on the machine model.

:func:`run_job` is the single entry point the miniapps and experiments use:
it compiles the job's kernels for the target core, spawns one generator per
rank, and interprets the yielded operations against the event engine, the
simulated MPI layer, and the OpenMP region model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.compile.compiler import CompiledKernel, Compiler
from repro.compile.options import CompilerOptions
from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.kernels.kernel import LoopKernel
from repro.machine.topology import Cluster
from repro.runtime import program as ops
from repro.runtime.event import Engine
from repro.runtime.mpi import Request, SimMPI
from repro.runtime.openmp import DATA_POLICIES, region_time
from repro.runtime.placement import JobPlacement
from repro.runtime.trace import RankTrace

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.faults.plan import FaultPlan
    from repro.perf.profile import NullSink

#: Type of a rank-program factory: (rank, size) -> generator of ops.
ProgramFactory = Callable[[int, int], Iterator]


@dataclass(frozen=True)
class Job:
    """Everything needed to simulate one application run."""

    cluster: Cluster
    placement: JobPlacement
    kernels: dict[str, LoopKernel]
    program: ProgramFactory
    options: CompilerOptions = field(default_factory=CompilerOptions)
    data_policy: str = "first-touch"
    communicators: dict[str, tuple[int, ...]] | None = None
    name: str = "job"
    #: Failure/straggler injection: node index -> compute slowdown factor
    #: (>= 1; e.g. {2: 1.5} models a thermally throttled node 2).
    node_slowdown: dict[int, float] | None = None
    #: Simulated-PMU sink (:class:`repro.perf.profile.ProfileSink`-shaped).
    #: ``None`` — the default — keeps every hot path at a single
    #: ``is not None`` test, so profiling costs nothing when off.
    perf_sink: "NullSink | None" = None
    #: Deterministic fault injection (:class:`repro.faults.FaultPlan`).
    #: ``None`` — the default — keeps every executor/MPI hook at a single
    #: ``is not None`` predicate, so chaos costs nothing when off.
    fault_plan: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.placement.cluster is not self.cluster:
            raise ConfigurationError("placement was built for a different cluster")
        if self.data_policy not in DATA_POLICIES:
            raise ConfigurationError(f"unknown data policy {self.data_policy!r}")
        if not self.kernels:
            raise ConfigurationError("job has no kernels")
        if self.node_slowdown:
            for node, factor in self.node_slowdown.items():
                if not 0 <= node < self.cluster.n_nodes:
                    raise ConfigurationError(f"slowdown for unknown node {node}")
                if factor < 1.0:
                    raise ConfigurationError(
                        f"slowdown factor must be >= 1, got {factor}"
                    )
        if self.fault_plan is not None:
            n = self.placement.n_ranks
            for spec in (*self.fault_plan.crashes, *self.fault_plan.stragglers):
                if spec.rank >= n:
                    raise ConfigurationError(
                        f"fault plan names rank {spec.rank}, but the job "
                        f"has only {n} ranks"
                    )


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated run."""

    job_name: str
    elapsed: float
    traces: dict[int, RankTrace]
    rank_finish: dict[int, float]
    total_flops: float
    total_dram_bytes: float
    messages_sent: int
    bytes_sent: float
    placement_label: str
    io_bytes: float = 0.0
    #: Ranks killed by injected faults (their traces end at the crash).
    failed_ranks: tuple[int, ...] = ()
    #: Ranks wedged as collateral of a lossy fault (blocked forever on a
    #: crashed peer or a dropped message); their ``rank_finish`` is the
    #: time they blocked, so time accounting stays conservation-exact.
    stalled_ranks: tuple[int, ...] = ()
    #: What the fault plan actually did (:class:`repro.faults.FaultStats`)
    #: — ``None`` when the job carried no (non-empty) plan.
    fault_stats: object | None = None

    @property
    def degraded(self) -> bool:
        """True when injected faults cost this run at least one rank."""
        return bool(self.failed_ranks or self.stalled_ranks)

    @property
    def achieved_flops_per_s(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.total_flops / self.elapsed

    @property
    def dram_bandwidth(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.total_dram_bytes / self.elapsed

    def breakdown(self) -> dict[str, float]:
        """Mean per-rank seconds in each trace category."""
        agg: dict[str, float] = {}
        for tr in self.traces.values():
            for cat, t in tr.breakdown().items():
                agg[cat] = agg.get(cat, 0.0) + t
        n = max(1, len(self.traces))
        return {cat: t / n for cat, t in agg.items()}

    def communication_fraction(self) -> float:
        """Fraction of the mean rank time spent in p2p + collectives."""
        b = self.breakdown()
        comm = b.get("p2p", 0.0) + b.get("collective", 0.0)
        if self.elapsed <= 0:
            return 0.0
        return min(1.0, comm / self.elapsed)


class _RankDriver:
    """Interprets one rank's generator against the engine.

    A rank has at most one blocking operation outstanding (its generator
    is suspended until the resume fires), so the blocked-interval
    bookkeeping lives in plain attributes and the engine callbacks are
    two bound methods created once per driver — the executor's hottest
    paths allocate no per-event closures.
    """

    __slots__ = ("rank", "ex", "gen", "trace", "finish_time", "crashed",
                 "blocked_since", "_advance_cb", "_resume_cb",
                 "_block_t0", "_block_category", "_block_label",
                 "_wait_remaining")

    def __init__(self, rank: int, executor: "_Executor") -> None:
        self.rank = rank
        self.ex = executor
        self.gen = executor.job.program(rank, executor.placement.n_ranks)
        self.trace = RankTrace(rank)
        self.finish_time: float | None = None
        self.crashed = False
        self.blocked_since: float | None = None
        self._advance_cb = self._advance_none
        self._resume_cb = self._resume_blocked
        self._block_t0 = 0.0
        self._block_category = ""
        self._block_label = ""
        self._wait_remaining = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.ex.engine.schedule(0.0, self._advance_cb)

    def _advance_none(self) -> None:
        self._advance(None)

    def _begin_block(self, category: str, label: str = "") -> Callable[[], None]:
        """Record the start of a blocking wait; returns the resume callback."""
        self._block_t0 = self.ex.engine.now
        self._block_category = category
        self._block_label = label
        if self.ex.faults is not None:
            self.blocked_since = self._block_t0
        return self._resume_cb

    def _resume_blocked(self) -> None:
        """Record the blocked interval (if any time passed) and advance."""
        if self.ex.faults is not None:
            if self.crashed:
                return      # a late delivery reached a dead rank
            self.blocked_since = None
        now = self.ex.engine.now
        if now > self._block_t0:
            self.trace.add(self._block_t0, now, self._block_category,
                           self._block_label)
            if self.ex.perf is not None:
                self.ex.perf.on_wait(self.rank, self._block_category,
                                     self._block_label, self._block_t0, now)
        self._advance(None)

    # -- fault injection ------------------------------------------------
    def _die(self, now: float) -> None:
        """Stop this rank for good at ``now`` (injected crash)."""
        self.finish_time = now
        self.gen.close()

    def _crash(self) -> None:
        """Injected-crash event: kill the rank at the current time.

        A rank blocked in a wait dies immediately (the partial wait is
        attributed so time accounting stays conservation-exact); a rank
        mid-compute finishes the in-flight region and dies at the next
        operation boundary (see the guard in :meth:`_advance`).
        """
        if self.finish_time is not None:
            return          # already finished normally
        self.crashed = True
        self.ex.faults.stats.crashes += 1
        if self.blocked_since is not None:
            now = self.ex.engine.now
            if now > self._block_t0:
                self.trace.add(self._block_t0, now, self._block_category,
                               self._block_label)
                if self.ex.perf is not None:
                    self.ex.perf.on_wait(self.rank, self._block_category,
                                         self._block_label, self._block_t0,
                                         now)
            self.blocked_since = None
            self._die(now)

    def _advance(self, send_value) -> None:
        engine = self.ex.engine
        if self.ex.faults is not None and self.crashed:
            if self.finish_time is None:
                self._die(engine.now)
            return
        while True:
            try:
                op = self.gen.send(send_value)
            except StopIteration:
                self.finish_time = engine.now
                return
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"rank {self.rank} of job {self.ex.job.name!r}: {exc}"
                ) from exc
            send_value = None

            if isinstance(op, ops.Compute):
                timing = self.ex.time_compute(self.rank, op)
                t0 = engine.now
                cat = "serial" if op.serial else "compute"
                self.trace.add(t0, t0 + timing.seconds, cat, op.kernel)
                self.ex.total_flops += timing.flops
                self.ex.total_dram_bytes += timing.dram_bytes
                if self.ex.perf is not None:
                    self.ex.perf.on_compute(
                        self.rank, op, timing,
                        self.ex.compiled[op.kernel], t0)
                engine.schedule(timing.seconds, self._advance_cb)
                return

            if isinstance(op, ops.Sleep):
                t0 = engine.now
                self.trace.add(t0, t0 + op.seconds, "sleep", "sleep")
                if self.ex.perf is not None:
                    self.ex.perf.on_wait(self.rank, "sleep", "sleep",
                                         t0, t0 + op.seconds)
                engine.schedule(op.seconds, self._advance_cb)
                return

            if isinstance(op, (ops.FileRead, ops.FileWrite)):
                done_at = self.ex.storage_transfer(op.size_bytes)
                label = "read" if isinstance(op, ops.FileRead) else "write"
                self.trace.add(engine.now, done_at, "io", label)
                if self.ex.perf is not None:
                    self.ex.perf.on_wait(self.rank, "io", label,
                                         engine.now, done_at)
                engine.schedule_at(done_at, self._advance_cb)
                return

            if isinstance(op, ops.Isend):
                send_value = self.ex.mpi.post_send(self.rank, op)
                continue

            if isinstance(op, ops.Irecv):
                send_value = self.ex.mpi.post_recv(self.rank, op)
                continue

            if isinstance(op, ops.Send):
                req = self.ex.mpi.post_send(self.rank, op)
                req.on_complete(self._begin_block("p2p", f"send->{op.dst}"))
                return

            if isinstance(op, ops.Recv):
                req = self.ex.mpi.post_recv(self.rank, op)
                req.on_complete(self._begin_block("p2p", f"recv<-{op.src}"))
                return

            if isinstance(op, ops.Sendrecv):
                sreq = self.ex.mpi.post_send(
                    self.rank, ops.Isend(op.dst, op.send_tag, op.size_bytes)
                )
                rreq = self.ex.mpi.post_recv(
                    self.rank, ops.Irecv(op.src, op.recv_tag)
                )
                self._wait_many([sreq, rreq], "p2p", "sendrecv")
                return

            if isinstance(op, ops.WaitAll):
                reqs = list(op.requests)
                for r in reqs:
                    if not isinstance(r, Request):
                        raise SimulationError(
                            f"rank {self.rank}: WaitAll on a non-request {r!r}"
                        )
                self._wait_many(reqs, "p2p", "waitall")
                return

            if isinstance(op, ops.NONBLOCKING_COLLECTIVE_OPS):
                # yields the request back; completion via WaitAll
                send_value = self.ex.mpi.post_collective(self.rank, op)
                continue

            if isinstance(op, ops.COLLECTIVE_OPS):
                req = self.ex.mpi.post_collective(self.rank, op)
                req.on_complete(
                    self._begin_block("collective", type(op).__name__.lower())
                )
                return

            raise SimulationError(
                f"rank {self.rank} yielded an unknown operation: {op!r}"
            )

    def _wait_many(self, reqs: list[Request], category: str, label: str) -> None:
        remaining = sum(1 for r in reqs if not r.done)
        if remaining == 0:
            # nothing to wait for; continue immediately (still via the
            # engine to keep the event ordering deterministic)
            self.ex.engine.schedule(0.0, self._advance_cb)
            return
        self._begin_block(category, label)
        self._wait_remaining = remaining
        one_done = self._wait_one_done
        for r in reqs:
            if not r.done:
                r.on_complete(one_done)

    def _wait_one_done(self) -> None:
        self._wait_remaining -= 1
        if self._wait_remaining == 0:
            self._resume_blocked()


class _Executor:
    """One run's mutable state."""

    __slots__ = ("job", "placement", "engine", "mpi", "compiled",
                 "total_flops", "total_dram_bytes", "_storage_busy",
                 "io_bytes", "perf", "faults")

    def __init__(self, job: Job) -> None:
        self.job = job
        self.placement = job.placement
        self.perf = job.perf_sink
        self.faults = None if job.fault_plan is None or job.fault_plan.empty \
            else job.fault_plan.bind()
        self.engine = Engine()
        self.mpi = SimMPI(self.engine, job.cluster, job.placement,
                          job.communicators, perf=job.perf_sink,
                          faults=self.faults)
        core = job.cluster.node.chips[0].domains[0].core
        compiler = Compiler(job.options)
        self.compiled: dict[str, CompiledKernel] = compiler.compile_many(
            job.kernels, core
        )
        self.total_flops = 0.0
        self.total_dram_bytes = 0.0
        self._storage_busy = 0.0
        self.io_bytes = 0.0

    def storage_transfer(self, size_bytes: float) -> float:
        """Completion time of one file transfer started now.

        The per-node channel bounds the client; the shared aggregate
        channel is arbitrated first-come-first-served across ranks.
        """
        spec = self.job.cluster.storage
        now = self.engine.now
        agg_start = max(now, self._storage_busy)
        self._storage_busy = agg_start + spec.aggregate_seconds(size_bytes)
        self.io_bytes += size_bytes
        return max(now + spec.transfer_seconds(size_bytes),
                   self._storage_busy + spec.open_latency_s)

    def time_compute(self, rank: int, op: ops.Compute):
        try:
            ck = self.compiled[op.kernel]
        except KeyError:
            raise SimulationError(
                f"rank {rank} references unregistered kernel {op.kernel!r}; "
                f"known: {sorted(self.compiled)}"
            ) from None
        timing = region_time(
            ck,
            op,
            self.placement.thread_cores(rank),
            self.job.cluster,
            self.placement.threads_per_domain,
            self.placement.home_domain(rank),
            self.job.data_policy,
        )
        if self.job.node_slowdown:
            factor = self.job.node_slowdown.get(
                self.placement.node_of(rank), 1.0)
            if factor != 1.0:
                timing = timing.scaled(factor)
        if self.faults is not None:
            factor = self.faults.compute_factor(rank, self.engine.now)
            if factor != 1.0:
                timing = timing.scaled(factor)
        return timing


def run_job(job: Job) -> RunResult:
    """Simulate ``job`` to completion and return the results.

    Raises
    ------
    DeadlockError
        If the event heap drains while some rank is still blocked (a real
        communication deadlock in the program).
    """
    ex = _Executor(job)
    if ex.perf is not None:
        ex.perf.begin_run(job)
    drivers = [
        _RankDriver(rank, ex) for rank in range(job.placement.n_ranks)
    ]
    if ex.faults is not None:
        # crashes are scheduled before the first advance, so a crash at
        # t=0 kills the rank before it executes a single operation
        for d in drivers:
            t = ex.faults.crash_time(d.rank)
            if t is not None:
                ex.engine.schedule_at(t, d._crash)
    for d in drivers:
        d.start()
    ex.engine.run()

    failed: tuple[int, ...] = ()
    stalled: tuple[int, ...] = ()
    if ex.faults is not None:
        failed = tuple(sorted(d.rank for d in drivers if d.crashed))
    unfinished = [d for d in drivers if d.finish_time is None]
    if unfinished:
        if ex.faults is None or not ex.faults.lossy:
            raise DeadlockError(
                f"ranks {[d.rank for d in unfinished]} never finished;\n"
                f"{ex.mpi.blocked_summary()}"
            )
        # Collateral of a lossy fault: ranks blocked forever on a crashed
        # peer or a dropped message.  Their clock stops where they
        # blocked, so per-rank attributed time still equals rank_finish.
        stalled = tuple(sorted(d.rank for d in unfinished))
        ex.faults.stats.stalled = len(stalled)
        for d in unfinished:
            d.finish_time = d.blocked_since if d.blocked_since is not None \
                else ex.engine.now

    # Lazy import: the runtime layer stays importable without the
    # observability package at module-load time.
    from repro import telemetry

    telemetry.count("executor.jobs")
    if failed or stalled:
        telemetry.count("executor.degraded")

    finish = {d.rank: float(d.finish_time) for d in drivers}
    result = RunResult(
        job_name=job.name,
        elapsed=max(finish.values()),
        traces={d.rank: d.trace for d in drivers},
        rank_finish=finish,
        total_flops=ex.total_flops,
        total_dram_bytes=ex.total_dram_bytes,
        messages_sent=ex.mpi.messages_sent,
        bytes_sent=ex.mpi.bytes_sent,
        placement_label=job.placement.describe(),
        io_bytes=ex.io_bytes,
        failed_ranks=failed,
        stalled_ranks=stalled,
        fault_stats=None if ex.faults is None else ex.faults.stats,
    )
    if ex.perf is not None:
        ex.perf.end_run(result)
    return result
