"""Minimal deterministic discrete-event engine.

Events are ``(time, sequence, action)`` triples on a heap; the sequence
number makes simultaneous events fire in scheduling order, so runs are
bit-reproducible.  The engine knows nothing about MPI or ranks — those live
in :mod:`repro.runtime.mpi` / :mod:`repro.runtime.executor`.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class Engine:
    """Event loop with a virtual clock."""

    __slots__ = ("_now", "_seq", "_heap", "_running")

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, action))

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute virtual time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, action))

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; returns the final virtual time.

        ``until`` optionally bounds the clock (events beyond it stay
        queued).  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        self._running = True
        try:
            while self._heap:
                when, _, action = self._heap[0]
                if until is not None and when > until:
                    break
                heapq.heappop(self._heap)
                self._now = when
                action()
        finally:
            self._running = False
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._heap)
