"""Simulated MPI: message matching, rendezvous, NIC serialization,
collectives.

Semantics follow mpi4py/MPI:

* point-to-point matching is FIFO per (source, tag) with
  :data:`~repro.runtime.program.ANY_SOURCE` wildcards;
* sends use the **eager/rendezvous protocol split**: below the network's
  rendezvous threshold the payload is buffered and the send completes
  immediately (so small blocking sends cannot deadlock, exactly like real
  MPI eager mode); at or above the threshold the send completes only at
  delivery (synchronous semantics — and cyclic large blocking sends
  deadlock loudly, as they eventually do on real machines);
* ``Isend``/``Irecv`` return :class:`Request` handles;
* collectives complete for everyone once all members have arrived
  (cost model in :mod:`repro.runtime.collectives`);
* each node's NIC serializes inter-node injections at its injection
  bandwidth — the resource the process-allocation experiment (F3)
  stresses when many ranks share a node.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CommunicatorError
from repro.machine.topology import Cluster, CoreAddress
from repro.runtime import program as ops
from repro.runtime.collectives import collective_time, profile_communicator
from repro.runtime.event import Engine
from repro.runtime.placement import JobPlacement


class Request:
    """Completion handle for a non-blocking operation."""

    __slots__ = ("rid", "done", "_waiters")
    _next_id = 0

    def __init__(self) -> None:
        Request._next_id += 1
        self.rid = Request._next_id
        self.done = False
        self._waiters: list[Callable[[], None]] = []

    def complete(self) -> None:
        if self.done:
            raise CommunicatorError(f"request {self.rid} completed twice")
        self.done = True
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb()

    def on_complete(self, cb: Callable[[], None]) -> None:
        if self.done:
            cb()
        else:
            self._waiters.append(cb)


@dataclass
class _SendPost:
    src: int
    tag: int
    size: float
    request: Request
    post_time: float


@dataclass
class _RecvPost:
    src: int        # may be ANY_SOURCE
    tag: int
    request: Request
    post_time: float


@dataclass
class _CollectiveState:
    op: object | None = None
    arrivals: dict[int, float] = field(default_factory=dict)
    requests: dict[int, Request] = field(default_factory=dict)
    max_size: float = 0.0


class SimMPI:
    """The matching engine bound to one job run."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        placement: JobPlacement,
        communicators: dict[str, tuple[int, ...]] | None = None,
        perf=None,
        faults=None,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.placement = placement
        #: Optional PMU sink (:mod:`repro.perf`); ``None`` = profiling off.
        self.perf = perf
        #: Optional bound fault state (:mod:`repro.faults`); ``None`` =
        #: chaos off — one predicate per delivery, like the PMU hook.
        self.faults = faults
        n = placement.n_ranks
        self.communicators: dict[str, tuple[int, ...]] = {
            "world": tuple(range(n))
        }
        if communicators:
            for name, members in communicators.items():
                members = tuple(members)
                if not members or any(not 0 <= r < n for r in members):
                    raise CommunicatorError(f"bad communicator {name!r}: {members}")
                if len(set(members)) != len(members):
                    raise CommunicatorError(f"duplicate ranks in {name!r}")
                self.communicators[name] = members
        # matching queues keyed by destination rank
        self._pending_sends: dict[int, list[_SendPost]] = {r: [] for r in range(n)}
        self._posted_recvs: dict[int, list[_RecvPost]] = {r: [] for r in range(n)}
        self._coll: dict[str, _CollectiveState] = {}
        self._nic_free: dict[int, float] = {}
        self._profiles: dict[str, object] = {}
        # link-level contention for torus networks
        self._links = None
        if cluster.network.topology == "torus" and cluster.n_nodes > 1:
            from repro.runtime.network import LinkTracker, TorusRouter

            self._links = LinkTracker(TorusRouter(cluster.n_nodes),
                                      cluster.network.link_bandwidth)
        #: accumulated bytes moved, for reports
        self.bytes_sent = 0.0
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _addr(self, rank: int) -> CoreAddress:
        return self.placement.thread_cores(rank)[0]

    def eager_threshold(self) -> float:
        """Message size below which sends complete on buffering."""
        return float(self.cluster.network.rendezvous_threshold_bytes)

    def _deliver(self, src: int, dst: int, size: float,
                 send_req: Request, recv_req: Request) -> None:
        """Schedule the delivery of a matched message."""
        now = self.engine.now
        a_src, a_dst = self._addr(src), self._addr(dst)
        start = now
        if a_src.node != a_dst.node:
            nic_free = self._nic_free.get(a_src.node, 0.0)
            start = max(now, nic_free)
            occupancy = size / self.cluster.node.nic_injection_bandwidth
            self._nic_free[a_src.node] = start + occupancy
            if self._links is not None:
                # torus: the route's links serialize contending messages
                start = self._links.reserve(a_src.node, a_dst.node, size,
                                            start)
        duration = self.cluster.transfer_time(a_src, a_dst, size)
        self.bytes_sent += size
        self.messages_sent += 1
        if self.perf is not None:
            self.perf.on_message(src, dst, size)
        if self.faults is not None:
            action = self.faults.message_action(src, dst, size)
            if action is not None:
                kind, extra = action
                if kind == "drop":
                    # the payload was injected (NIC time and byte counters
                    # already charged) but never arrives: the receive —
                    # and a rendezvous send — stay pending forever
                    return
                if kind == "delay":
                    duration += extra
                else:  # duplicate: a retransmission burns wire and NIC
                    self.bytes_sent += size
                    self.messages_sent += 1
                    if self.perf is not None:
                        self.perf.on_message(src, dst, size)
                    if a_src.node != a_dst.node:
                        self._nic_free[a_src.node] += \
                            size / self.cluster.node.nic_injection_bandwidth

        def finish() -> None:
            if not send_req.done:       # eager sends completed at post time
                send_req.complete()
            recv_req.complete()

        self.engine.schedule_at(start + duration, finish)

    def _try_match_send(self, dst: int, post: _SendPost) -> bool:
        """Try to pair a send with an already-posted receive."""
        queue = self._posted_recvs[dst]
        for i, rp in enumerate(queue):
            if rp.tag == post.tag and rp.src in (post.src, ops.ANY_SOURCE):
                queue.pop(i)
                self._deliver(post.src, dst, post.size, post.request, rp.request)
                return True
        return False

    def _try_match_recv(self, dst: int, rp: _RecvPost) -> bool:
        """Try to pair a receive with an already-pending send."""
        queue = self._pending_sends[dst]
        for i, sp in enumerate(queue):
            if sp.tag == rp.tag and rp.src in (sp.src, ops.ANY_SOURCE):
                queue.pop(i)
                self._deliver(sp.src, dst, sp.size, sp.request, rp.request)
                return True
        return False

    # ------------------------------------------------------------------
    # point-to-point API (used by the executor)
    # ------------------------------------------------------------------
    def post_send(self, src: int, op: ops.Send | ops.Isend) -> Request:
        if not 0 <= op.dst < self.placement.n_ranks:
            raise CommunicatorError(f"send to invalid rank {op.dst}")
        if op.dst == src:
            raise CommunicatorError(f"rank {src} sending to itself")
        req = Request()
        post = _SendPost(src=src, tag=op.tag, size=op.size_bytes,
                         request=req, post_time=self.engine.now)
        eager = op.size_bytes < self.eager_threshold()
        matched = self._try_match_send(op.dst, post)
        if not matched:
            self._pending_sends[op.dst].append(post)
            if eager:
                # payload fits the eager buffer: the send completes now,
                # the data is delivered whenever the receive is posted
                req.complete()
        return req

    def post_recv(self, dst: int, op: ops.Recv | ops.Irecv) -> Request:
        if op.src != ops.ANY_SOURCE and not 0 <= op.src < self.placement.n_ranks:
            raise CommunicatorError(f"recv from invalid rank {op.src}")
        if op.src == dst:
            raise CommunicatorError(f"rank {dst} receiving from itself")
        req = Request()
        rp = _RecvPost(src=op.src, tag=op.tag, request=req,
                       post_time=self.engine.now)
        if not self._try_match_recv(dst, rp):
            self._posted_recvs[dst].append(rp)
        return req

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def post_collective(self, rank: int, op) -> Request:
        comm_name = op.comm
        members = self.communicators.get(comm_name)
        if members is None:
            raise CommunicatorError(f"unknown communicator {comm_name!r}")
        if rank not in members:
            raise CommunicatorError(
                f"rank {rank} is not a member of communicator {comm_name!r}"
            )
        state = self._coll.setdefault(comm_name, _CollectiveState())
        if state.op is None:
            state.op = op
        elif type(state.op) is not type(op):
            raise CommunicatorError(
                f"collective mismatch on {comm_name!r}: rank {rank} called "
                f"{type(op).__name__} while {type(state.op).__name__} is pending"
            )
        if rank in state.arrivals:
            raise CommunicatorError(
                f"rank {rank} entered {type(op).__name__} twice on {comm_name!r}"
            )
        state.arrivals[rank] = self.engine.now
        state.max_size = max(state.max_size, op.size_bytes)
        req = Request()
        state.requests[rank] = req

        if len(state.arrivals) == len(members):
            profile = self._profiles.get(comm_name)
            if profile is None:
                profile = profile_communicator(
                    self.cluster, tuple(self._addr(r) for r in members)
                )
                self._profiles[comm_name] = profile
            sized_op = dataclasses.replace(state.op, size_bytes=state.max_size) \
                if state.max_size != state.op.size_bytes else state.op
            t = collective_time(sized_op, len(members), profile)
            if self.perf is not None:
                self.perf.on_collective(
                    comm_name, type(state.op).__name__, state.max_size,
                    len(members), t)
            requests = dict(state.requests)
            # reset for the next collective on this communicator
            self._coll[comm_name] = _CollectiveState()

            def finish() -> None:
                for r in requests.values():
                    r.complete()

            self.engine.schedule(t, finish)
        return req

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def blocked_summary(self) -> str:
        """Describe unmatched traffic (used in deadlock reports)."""
        lines = []
        for dst, sends in self._pending_sends.items():
            for sp in sends:
                lines.append(f"unmatched send {sp.src}->{dst} tag={sp.tag}")
        for dst, recvs in self._posted_recvs.items():
            for rp in recvs:
                src = "ANY" if rp.src == ops.ANY_SOURCE else rp.src
                lines.append(f"unmatched recv {src}->{dst} tag={rp.tag}")
        for name, state in self._coll.items():
            if state.op is not None:
                missing = set(self.communicators[name]) - set(state.arrivals)
                lines.append(
                    f"collective {type(state.op).__name__} on {name!r} waiting "
                    f"for ranks {sorted(missing)}"
                )
        return "\n".join(lines) if lines else "(no unmatched operations)"
