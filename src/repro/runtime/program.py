"""Operation vocabulary for rank programs.

A *rank program* is a Python generator that yields these operations; the
executor interprets them against the machine model.  The convention mirrors
mpi4py: lower-level buffer semantics are expressed as byte counts (the
simulator moves time, not data).

Example — a 1D halo-exchange step::

    def rank_program(rank: int, size: int):
        left, right = (rank - 1) % size, (rank + 1) % size
        for _ in range(n_steps):
            yield Compute("stencil", iters=local_cells)
            r1 = yield Irecv(src=left, tag=0)
            r2 = yield Irecv(src=right, tag=1)
            yield Isend(dst=right, tag=0, size_bytes=halo)
            yield Isend(dst=left, tag=1, size_bytes=halo)
            yield WaitAll([r1, r2])
            yield Allreduce(size_bytes=8)

``Irecv``/``Isend`` yield back a request handle; ``WaitAll`` blocks on them.
A ``Send`` below the network's rendezvous threshold completes immediately
(eager buffering); at or above it, the send completes at delivery —
matching real MPI's protocol split, so large cyclic blocking sends
deadlock just as they eventually do on real machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError

#: Wildcard source for Recv/Irecv.
ANY_SOURCE = -1

#: Largest portable MPI tag (the standard guarantees at least this much
#: headroom in ``MPI_TAG_UB``); the static analyzer warns above it.
MAX_PORTABLE_TAG = 32767


def describe_op(op) -> str:
    """Render an op as ``Name(field=value, ...)`` for error messages.

    Falls back to ``repr`` for non-dataclass values (e.g. a stray object a
    buggy program yielded).
    """
    try:
        parts = ", ".join(
            f"{f.name}={getattr(op, f.name)!r}" for f in fields(op)
        )
    except TypeError:
        return repr(op)
    return f"{type(op).__name__}({parts})"


def _fail(op, field: str, value, requirement: str) -> None:
    """Raise a ConfigurationError naming the op, the field, and the value."""
    raise ConfigurationError(
        f"{type(op).__name__}: {field}={value!r} {requirement} "
        f"in {describe_op(op)}"
    )


def _check_size(op, size_bytes: float, field: str = "size_bytes") -> None:
    if not math.isfinite(size_bytes):
        _fail(op, field, size_bytes, "must be finite")
    if size_bytes < 0:
        _fail(op, field, size_bytes, "must be non-negative")


def _check_tag(op, tag: int, field: str = "tag") -> None:
    if tag < 0:
        _fail(op, field, tag, "must be non-negative")


@dataclass(frozen=True)
class Compute:
    """An OpenMP-parallel compute region over a named kernel.

    ``kernel`` refers to a kernel registered with the job; ``iters`` is the
    total iteration count of the region for this rank (the OpenMP model
    splits it over the rank's threads).  ``serial=True`` runs on the master
    thread only (Amdahl regions).  ``imbalance`` is the max/mean thread-work
    ratio for statically unbalanced loops (1.0 = perfectly balanced).
    """

    kernel: str
    iters: float
    schedule: str = "static"
    serial: bool = False
    imbalance: float = 1.0
    working_set_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.iters < 0 or not math.isfinite(self.iters):
            _fail(self, "iters", self.iters, "must be finite and non-negative")
        if self.schedule not in ("static", "dynamic", "guided"):
            _fail(self, "schedule", self.schedule,
                  "must be one of 'static', 'dynamic', 'guided'")
        if self.imbalance < 1.0:
            _fail(self, "imbalance", self.imbalance,
                  "is a max/mean ratio and must be >= 1")
        if self.working_set_scale <= 0:
            _fail(self, "working_set_scale", self.working_set_scale,
                  "must be positive")


@dataclass(frozen=True)
class Sleep:
    """A fixed-duration phase (a library call outside the model)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0 or not math.isfinite(self.seconds):
            _fail(self, "seconds", self.seconds,
                  "must be finite and non-negative")


@dataclass(frozen=True)
class FileRead:
    """Read ``size_bytes`` from the shared parallel filesystem."""

    size_bytes: float

    def __post_init__(self) -> None:
        _check_size(self, self.size_bytes)


@dataclass(frozen=True)
class FileWrite:
    """Write ``size_bytes`` to the shared parallel filesystem."""

    size_bytes: float

    def __post_init__(self) -> None:
        _check_size(self, self.size_bytes)


# ----------------------------------------------------------------------
# point-to-point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Send:
    """Blocking send (synchronous semantics)."""

    dst: int
    tag: int
    size_bytes: float

    def __post_init__(self) -> None:
        _check_size(self, self.size_bytes)
        _check_tag(self, self.tag)


@dataclass(frozen=True)
class Recv:
    """Blocking receive; ``src`` may be :data:`ANY_SOURCE`."""

    src: int
    tag: int

    def __post_init__(self) -> None:
        _check_tag(self, self.tag)


@dataclass(frozen=True)
class Isend:
    """Non-blocking send; yields a request handle."""

    dst: int
    tag: int
    size_bytes: float

    def __post_init__(self) -> None:
        _check_size(self, self.size_bytes)
        _check_tag(self, self.tag)


@dataclass(frozen=True)
class Irecv:
    """Non-blocking receive; yields a request handle."""

    src: int
    tag: int

    def __post_init__(self) -> None:
        _check_tag(self, self.tag)


@dataclass(frozen=True)
class WaitAll:
    """Block until every request handle in ``requests`` has completed."""

    requests: tuple

    def __init__(self, requests) -> None:
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True)
class Sendrecv:
    """Combined send+receive (the classic halo-exchange primitive)."""

    dst: int
    send_tag: int
    size_bytes: float
    src: int
    recv_tag: int

    def __post_init__(self) -> None:
        _check_size(self, self.size_bytes)
        _check_tag(self, self.send_tag, "send_tag")
        _check_tag(self, self.recv_tag, "recv_tag")


# ----------------------------------------------------------------------
# collectives — all ranks of the communicator must yield the same op
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Collective:
    size_bytes: float = 0.0
    comm: str = "world"

    def __post_init__(self) -> None:
        _check_size(self, self.size_bytes)


@dataclass(frozen=True)
class Barrier(_Collective):
    pass


@dataclass(frozen=True)
class Bcast(_Collective):
    root: int = 0


@dataclass(frozen=True)
class Reduce(_Collective):
    root: int = 0


@dataclass(frozen=True)
class Allreduce(_Collective):
    pass


@dataclass(frozen=True)
class Allgather(_Collective):
    """``size_bytes`` is the per-rank contribution."""


@dataclass(frozen=True)
class Alltoall(_Collective):
    """``size_bytes`` is the total per-rank send volume (sum over peers)."""


@dataclass(frozen=True)
class Gather(_Collective):
    root: int = 0


@dataclass(frozen=True)
class Scatter(_Collective):
    root: int = 0


@dataclass(frozen=True)
class IAllreduce(_Collective):
    """Non-blocking allreduce: yields a request; wait with ``WaitAll``.

    Lets solvers pipeline global reductions under compute (the
    communication-avoiding CG/BiCGStab variants)."""


@dataclass(frozen=True)
class IBarrier(_Collective):
    """Non-blocking barrier: yields a request."""


@dataclass(frozen=True)
class ReduceScatter(_Collective):
    """``size_bytes`` is the total reduced vector (each rank keeps 1/p)."""


@dataclass(frozen=True)
class Scan(_Collective):
    """Inclusive prefix reduction."""


#: Blocking collectives (the issuing rank waits for completion).
COLLECTIVE_OPS = (Barrier, Bcast, Reduce, Allreduce, Allgather, Alltoall,
                  Gather, Scatter, ReduceScatter, Scan)

#: Non-blocking collectives (yield a request; complete via WaitAll).
NONBLOCKING_COLLECTIVE_OPS = (IAllreduce, IBarrier)

#: Point-to-point operations.
P2P_OPS = (Send, Recv, Isend, Irecv, Sendrecv)

#: Operations that carry no MPI semantics (local to the rank).
LOCAL_OPS = (Compute, Sleep, FileRead, FileWrite)

#: Every op class a rank program may yield.
ALL_OPS = LOCAL_OPS + P2P_OPS + (WaitAll,) + COLLECTIVE_OPS \
    + NONBLOCKING_COLLECTIVE_OPS


# ----------------------------------------------------------------------
# introspection hooks (used by the static analyzer and error reporting)
# ----------------------------------------------------------------------
def is_collective(op) -> bool:
    """True for any collective, blocking or not."""
    return isinstance(op, (COLLECTIVE_OPS, NONBLOCKING_COLLECTIVE_OPS))


def is_p2p(op) -> bool:
    """True for point-to-point operations (including ``Sendrecv``)."""
    return isinstance(op, P2P_OPS)


def yields_request(op) -> bool:
    """True when the executor sends a request handle back for this op."""
    return isinstance(op, (Isend, Irecv) + NONBLOCKING_COLLECTIVE_OPS)


def is_known_op(op) -> bool:
    """True when the executor would accept this yielded value."""
    return isinstance(op, ALL_OPS)


def collective_root(op) -> int | None:
    """The rooted collective's root rank, or None for unrooted ones."""
    return getattr(op, "root", None)
