"""Thread-binding policies and MPI process-allocation methods.

These are the paper's two placement axes:

* **thread binding** — within the set of cores a node hosts, threads of a
  rank are laid out with a *stride*: stride 1 packs consecutive threads on
  consecutive cores (filling one CMG before the next); stride = cores/CMG
  scatters consecutive threads across CMGs.  The abstract's finding is that
  *shorter strides perform better for most miniapps*.
* **process allocation** — how ranks are distributed over nodes (and over
  CMGs within a node): block, cyclic, domain-packed, spread.  The
  abstract's finding is that this axis *has little impact*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, PlacementError


def strided_order(n: int, stride: int) -> list[int]:
    """Collision-free enumeration of ``0..n-1`` with the given stride.

    Visits every ``stride``-th slot, advancing to the next unused slot on
    wrap-around, so the result is a permutation for *any* positive stride::

        strided_order(8, 1) == [0, 1, 2, 3, 4, 5, 6, 7]
        strided_order(8, 4) == [0, 4, 1, 5, 2, 6, 3, 7]
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if stride < 1:
        raise ConfigurationError("stride must be positive")
    order: list[int] = []
    used = [False] * n
    idx = 0
    for _ in range(n):
        while used[idx]:
            idx = (idx + 1) % n
        order.append(idx)
        used[idx] = True
        idx = (idx + stride) % n
    return order


@dataclass(frozen=True)
class ThreadBinding:
    """Thread layout over a node's cores.

    ``policy`` is one of:

    * ``"compact"`` — stride 1 (consecutive cores, fills a CMG first);
    * ``"scatter"`` — stride = cores per NUMA domain (consecutive threads on
      different CMGs);
    * ``"stride"`` — explicit ``stride`` value (the paper's sweep axis).
    """

    policy: str = "compact"
    stride: int = 1

    def __post_init__(self) -> None:
        if self.policy not in ("compact", "scatter", "stride"):
            raise ConfigurationError(f"unknown binding policy {self.policy!r}")
        if self.stride < 1:
            raise ConfigurationError("stride must be positive")
        if self.policy == "compact" and self.stride != 1:
            raise ConfigurationError("compact binding implies stride 1")

    def effective_stride(self, cores_per_domain: int) -> int:
        if self.policy == "compact":
            return 1
        if self.policy == "scatter":
            return cores_per_domain
        return self.stride

    def label(self) -> str:
        if self.policy == "stride":
            return f"stride-{self.stride}"
        return self.policy


@dataclass(frozen=True)
class ProcessAllocation:
    """Rank-to-node (and within-node) allocation method.

    * ``"block"`` — fill node 0 with ranks, then node 1, ... (the `mpirun`
      default "by slot").
    * ``"cyclic"`` — deal ranks round-robin over nodes ("by node").
    * ``"domain-pack"`` — like block, but each rank's thread window is
      aligned to NUMA-domain boundaries (one-rank-per-CMG style maps).
    * ``"spread"`` — balance ranks over nodes as evenly as possible,
      keeping consecutive ranks together in blocks.
    """

    method: str = "block"

    METHODS = ("block", "cyclic", "domain-pack", "spread")

    def __post_init__(self) -> None:
        if self.method not in self.METHODS:
            raise ConfigurationError(f"unknown allocation method {self.method!r}")

    # ------------------------------------------------------------------
    def ranks_per_node(self, n_ranks: int, n_nodes: int,
                       capacity_per_node: int) -> list[list[int]]:
        """Distribute global rank ids over nodes.

        ``capacity_per_node`` is the number of ranks one node can host
        (cores // threads-per-rank).
        """
        if n_ranks < 1:
            raise ConfigurationError("need at least one rank")
        if capacity_per_node < 1:
            raise PlacementError("node cannot host even one rank "
                                 "(threads per rank exceeds cores per node)")
        if n_ranks > n_nodes * capacity_per_node:
            raise PlacementError(
                f"{n_ranks} ranks exceed cluster capacity "
                f"{n_nodes} nodes x {capacity_per_node} ranks"
            )
        buckets: list[list[int]] = [[] for _ in range(n_nodes)]
        if self.method in ("block", "domain-pack"):
            node = 0
            for r in range(n_ranks):
                while len(buckets[node]) >= capacity_per_node:
                    node += 1
                buckets[node].append(r)
        elif self.method == "cyclic":
            node = 0
            for r in range(n_ranks):
                # find next node with room, starting at the cursor
                probed = 0
                while len(buckets[node]) >= capacity_per_node:
                    node = (node + 1) % n_nodes
                    probed += 1
                    if probed > n_nodes:
                        raise PlacementError("no node has room")  # pragma: no cover
                buckets[node].append(r)
                node = (node + 1) % n_nodes
        else:  # spread
            # use as many nodes as possible, keeping consecutive ranks
            # together in near-equal blocks
            used_nodes = min(n_nodes, n_ranks)
            per = -(-n_ranks // used_nodes)
            # per may exceed capacity when n_ranks ~ capacity*nodes
            per = min(per, capacity_per_node)
            node, count = 0, 0
            for r in range(n_ranks):
                if count >= per and node < n_nodes - 1:
                    node, count = node + 1, 0
                buckets[node].append(r)
                count += 1
        return buckets

    def label(self) -> str:
        return self.method
