"""Simulated MPI + OpenMP runtime on the machine model.

This package is the substrate for every placement experiment in the paper:

* :mod:`~repro.runtime.event` — the discrete-event engine.
* :mod:`~repro.runtime.program` — the operation vocabulary rank programs
  yield (compute regions, point-to-point, collectives).
* :mod:`~repro.runtime.mpi` — message matching, rendezvous, NIC
  serialization; mpi4py-flavoured semantics.
* :mod:`~repro.runtime.collectives` — binomial / recursive-doubling / ring
  cost models.
* :mod:`~repro.runtime.openmp` — fork-join parallel-region timing with
  schedules, imbalance, and NUMA-aware bandwidth shares.
* :mod:`~repro.runtime.affinity` — thread-binding policies (compact,
  scatter, stride-k) and process-allocation methods (block, cyclic,
  domain-packed).
* :mod:`~repro.runtime.placement` — rank -> cores mapping with
  oversubscription checks.
* :mod:`~repro.runtime.executor` — runs (programs x placement x machine x
  compiler) to a :class:`~repro.runtime.executor.RunResult`.
"""

from repro.runtime.affinity import ProcessAllocation, ThreadBinding
from repro.runtime.event import Engine
from repro.runtime.executor import Job, RunResult, run_job
from repro.runtime.placement import JobPlacement
from repro.runtime.program import (
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Recv,
    Reduce,
    Scatter,
    Send,
    Sendrecv,
    Sleep,
    WaitAll,
)

__all__ = [
    "Engine",
    "Job",
    "RunResult",
    "run_job",
    "JobPlacement",
    "ProcessAllocation",
    "ThreadBinding",
    "Compute",
    "Sleep",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "WaitAll",
    "Sendrecv",
    "Barrier",
    "Bcast",
    "Reduce",
    "Allreduce",
    "Allgather",
    "Alltoall",
    "Gather",
    "Scatter",
]
