"""Analytic cost models for MPI collectives.

Collectives complete when every member rank has arrived; the completion
time is ``max(arrival) + algorithm_time``.  Algorithm times follow the
classic LogGP-style forms used by MPICH/Open MPI cost models:

* barrier        — dissemination: ``ceil(log2 p)`` latency rounds
* bcast / reduce — binomial tree: ``ceil(log2 p)`` rounds of (alpha + n/B)
* allreduce      — recursive doubling: ``ceil(log2 p)`` rounds, two
  transfers' worth of payload per round pair (reduce-scatter + allgather)
* allgather      — ring: ``p - 1`` steps of the per-rank block
* alltoall       — pairwise exchange: ``p - 1`` steps of ``n / (p - 1)``
* gather/scatter — binomial with the root moving the full payload

The (alpha, 1/B) pair is classified from the communicator's span: all ranks
in one NUMA domain, one node, or across the network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CommunicatorError
from repro.machine.topology import Cluster, CoreAddress
from repro.runtime import program as ops
from repro.units import US

#: Per-rank software overhead of entering a collective.
_SW_OVERHEAD_S = 0.2 * US


@dataclass(frozen=True)
class CommProfile:
    """Characteristic latency/bandwidth for one communicator's span."""

    alpha_s: float
    bandwidth: float
    span: str   # "domain" | "node" | "network"


def profile_communicator(
    cluster: Cluster, members: tuple[CoreAddress, ...]
) -> CommProfile:
    """Classify a communicator by the widest distance among its members."""
    if not members:
        raise CommunicatorError("communicator has no members")
    first = members[0]
    same_node = all(m.node == first.node for m in members)
    if not same_node:
        n = cluster.n_nodes
        # hop estimate: average of a representative worst pair
        max_hops = 1
        nodes = sorted({m.node for m in members})
        for other in nodes[1:]:
            max_hops = max(max_hops, cluster.network.hops(nodes[0], other, n))
        alpha = cluster.network.base_latency_s + max_hops * cluster.network.hop_latency_s
        return CommProfile(alpha_s=alpha, bandwidth=cluster.network.link_bandwidth,
                           span="network")
    same_domain = all(
        m.chip == first.chip and m.domain == first.domain for m in members
    )
    if same_domain:
        return CommProfile(alpha_s=cluster.shm_latency_s,
                           bandwidth=cluster.shm_bandwidth, span="domain")
    chip = cluster.node.chips[first.chip]
    alpha = cluster.shm_latency_s + chip.inter_domain_latency_s
    bw = cluster.shm_bandwidth
    if chip.inter_domain_bandwidth > 0:
        bw = min(bw, chip.inter_domain_bandwidth)
    return CommProfile(alpha_s=alpha, bandwidth=bw, span="node")


def collective_time(op, p: int, profile: CommProfile) -> float:
    """Algorithm time of one collective on a ``p``-rank communicator."""
    if p < 1:
        raise CommunicatorError("communicator size must be positive")
    if p == 1:
        return _SW_OVERHEAD_S
    rounds = math.ceil(math.log2(p))
    alpha, bw = profile.alpha_s, profile.bandwidth
    n = op.size_bytes

    if isinstance(op, (ops.Barrier, ops.IBarrier)):
        t = rounds * alpha
    elif isinstance(op, (ops.Bcast, ops.Reduce)):
        # small: binomial tree; large: scatter + ring-allgather
        # (van de Geijn) whose payload term does not multiply by log p
        binomial = rounds * (alpha + n / bw)
        vdg = (rounds + p - 1) * alpha + 2.0 * (p - 1) / p * n / bw
        t = min(binomial, vdg)
    elif isinstance(op, (ops.Allreduce, ops.IAllreduce)):
        # small: recursive doubling; large: reduce-scatter + allgather
        recursive = rounds * (alpha + 2.0 * n / bw)
        rabenseifner = 2 * (p - 1) * alpha + 2.0 * (p - 1) / p * n / bw
        t = min(recursive, rabenseifner)
    elif isinstance(op, ops.Allgather):
        t = (p - 1) * (alpha + n / bw)
    elif isinstance(op, ops.Alltoall):
        per_peer = n / (p - 1)
        t = (p - 1) * (alpha + per_peer / bw)
    elif isinstance(op, (ops.Gather, ops.Scatter)):
        t = rounds * alpha + (p - 1) / p * (n * p) / bw if n > 0 else rounds * alpha
    elif isinstance(op, ops.ReduceScatter):
        # pairwise exchange: p-1 steps of n/p each
        t = (p - 1) * (alpha + (n / p) / bw)
    elif isinstance(op, ops.Scan):
        # linear-latency prefix with pipelined payload
        t = rounds * (alpha + n / bw) + alpha * (p - 1) / 4.0
    else:
        raise CommunicatorError(f"not a collective op: {op!r}")
    return t + _SW_OVERHEAD_S * rounds
