"""Link-level torus routing and contention.

The base point-to-point model charges latency + payload/bandwidth and
serializes on the sender's NIC.  For torus networks (Tofu-D) this module
adds the next level of fidelity: **dimension-ordered routing over directed
links with per-link serialization**, so messages whose routes share a link
contend, while disjoint routes proceed in parallel — the mechanism that
makes rank placement matter on real torus machines.

The cluster's node count is folded into a near-cubic 3D torus (the same
shape :meth:`~repro.machine.interconnect.InterconnectSpec.hops` assumes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: A directed link: (node, dimension 0..2, direction +1/-1).
Link = tuple[int, int, int]


@dataclass(frozen=True)
class TorusShape:
    """3D folding of a flat node range."""

    side: int

    @classmethod
    def for_nodes(cls, n_nodes: int) -> "TorusShape":
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        side = max(1, round(n_nodes ** (1.0 / 3.0)))
        while side ** 3 < n_nodes:
            side += 1
        return cls(side=side)

    def coords(self, node: int) -> tuple[int, int, int]:
        s = self.side
        if node < 0 or node >= s ** 3:
            raise ConfigurationError(f"node {node} outside the {s}^3 torus")
        return (node % s, (node // s) % s, node // (s * s))

    def node(self, x: int, y: int, z: int) -> int:
        s = self.side
        return (x % s) + (y % s) * s + (z % s) * s * s


class TorusRouter:
    """Dimension-ordered (x, then y, then z) shortest-direction routing."""

    def __init__(self, n_nodes: int) -> None:
        self.shape = TorusShape.for_nodes(n_nodes)
        self.n_nodes = n_nodes

    def route(self, src: int, dst: int) -> list[Link]:
        """Directed links traversed from ``src`` to ``dst``."""
        if src == dst:
            return []
        s = self.shape.side
        cur = list(self.shape.coords(src))
        goal = self.shape.coords(dst)
        links: list[Link] = []
        for dim in range(3):
            delta = (goal[dim] - cur[dim]) % s
            if delta == 0:
                continue
            # pick the shorter wrap direction (ties go +)
            if delta <= s - delta:
                step, count = +1, delta
            else:
                step, count = -1, s - delta
            for _ in range(count):
                node_here = self.shape.node(*cur)
                links.append((node_here, dim, step))
                cur[dim] = (cur[dim] + step) % s
        return links


class LinkTracker:
    """Per-link busy-until bookkeeping (wormhole-style single occupancy)."""

    def __init__(self, router: TorusRouter, link_bandwidth: float) -> None:
        if link_bandwidth <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        self.router = router
        self.link_bandwidth = link_bandwidth
        self._busy: dict[Link, float] = {}
        #: bytes x hops actually routed (diagnostics)
        self.byte_hops = 0.0

    def reserve(self, src: int, dst: int, size_bytes: float,
                earliest: float) -> float:
        """Reserve the route; returns the transfer start time.

        The message starts when every link on its route is free (and not
        before ``earliest``), then occupies all of them for the payload
        serialization time — a first-fit wormhole approximation.
        """
        if size_bytes < 0:
            raise ConfigurationError("size must be non-negative")
        links = self.router.route(src, dst)
        if not links:
            return earliest
        start = earliest
        for link in links:
            start = max(start, self._busy.get(link, 0.0))
        occupancy = size_bytes / self.link_bandwidth
        for link in links:
            self._busy[link] = start + occupancy
        self.byte_hops += size_bytes * len(links)
        return start

    def utilization_snapshot(self, now: float) -> int:
        """Number of links still busy at ``now`` (diagnostics)."""
        return sum(1 for t in self._busy.values() if t > now)
