"""Per-rank timelines and phase breakdowns.

Every rank accumulates a list of :class:`Segment` records; the
:class:`~repro.runtime.executor.RunResult` aggregates them into the time
breakdown the paper's analysis plots (compute / communication wait /
collective / overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

#: Segment categories.
CATEGORIES = ("compute", "serial", "p2p", "collective", "sleep", "io", "idle")


@dataclass(frozen=True, slots=True)
class Segment:
    """One contiguous activity interval of a rank."""

    start: float
    end: float
    category: str
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"segment ends before it starts ({self.start} .. {self.end})"
            )
        if self.category not in CATEGORIES:
            raise SimulationError(f"unknown trace category {self.category!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True)
class RankTrace:
    """Timeline of one rank."""

    rank: int
    segments: list[Segment] = field(default_factory=list)

    def add(self, start: float, end: float, category: str, label: str = "") -> None:
        self.segments.append(Segment(start, end, category, label))

    def total(self, category: str) -> float:
        if category not in CATEGORIES:
            raise SimulationError(f"unknown trace category {category!r}")
        return sum(s.duration for s in self.segments if s.category == category)

    def breakdown(self) -> dict[str, float]:
        out = {c: 0.0 for c in CATEGORIES}
        for s in self.segments:
            out[s.category] += s.duration
        return out

    def by_label(self) -> dict[str, float]:
        """Total time per label (e.g. per kernel name)."""
        out: dict[str, float] = {}
        for s in self.segments:
            if s.label:
                out[s.label] = out.get(s.label, 0.0) + s.duration
        return out
