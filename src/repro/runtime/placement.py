"""Rank -> threads -> cores mapping.

:class:`JobPlacement` combines a cluster, a process-allocation method and a
thread-binding policy into the concrete map every other runtime component
consumes:

* ``thread_cores(rank)`` — the :class:`~repro.machine.topology.CoreAddress`
  of each OpenMP thread of a rank;
* ``threads_per_domain`` — how many threads (across all ranks) are pinned to
  each NUMA domain — the static contention census used for bandwidth
  shares;
* ``home_domain(rank)`` — where the rank's data lives under serial/master
  first-touch.

Within a node, the cores hosted by that node are enumerated in the
binding's strided order, and the ranks assigned to the node take
consecutive windows of that enumeration — this reproduces exactly the
``OMP_PROC_BIND``-style stride experiments of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import PlacementError
from repro.machine.topology import Cluster, CoreAddress
from repro.runtime.affinity import ProcessAllocation, ThreadBinding, strided_order


@dataclass(frozen=True)
class JobPlacement:
    """Immutable placement of ``n_ranks`` x ``threads_per_rank`` threads."""

    cluster: Cluster
    n_ranks: int
    threads_per_rank: int
    allocation: ProcessAllocation = field(default_factory=ProcessAllocation)
    binding: ThreadBinding = field(default_factory=ThreadBinding)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise PlacementError("need at least one rank")
        if self.threads_per_rank < 1:
            raise PlacementError("need at least one thread per rank")
        if self.threads_per_rank > self.cluster.cores_per_node:
            raise PlacementError(
                f"{self.threads_per_rank} threads per rank exceed the "
                f"{self.cluster.cores_per_node} cores of a node"
            )
        total = self.n_ranks * self.threads_per_rank
        if total > self.cluster.total_cores:
            raise PlacementError(
                f"{total} threads exceed the cluster's {self.cluster.total_cores} cores"
            )
        # Force construction (and validation) of the full map eagerly.
        _ = self.thread_map

    # ------------------------------------------------------------------
    @cached_property
    def _node_cores_per_domain(self) -> int:
        doms = self.cluster.node.flat_domains()
        sizes = {d.n_cores for d in doms}
        if len(sizes) != 1:
            raise PlacementError("heterogeneous domain sizes are not supported")
        return sizes.pop()

    @cached_property
    def thread_map(self) -> dict[int, tuple[CoreAddress, ...]]:
        """rank -> per-thread core addresses."""
        cluster = self.cluster
        cores_per_node = cluster.cores_per_node
        capacity = cores_per_node // self.threads_per_rank
        buckets = self.allocation.ranks_per_node(
            self.n_ranks, cluster.n_nodes, capacity
        )
        stride = self.binding.effective_stride(self._node_cores_per_domain)
        if stride >= cores_per_node:
            raise PlacementError(
                f"stride {stride} is not meaningful on a {cores_per_node}-core node"
            )
        order = strided_order(cores_per_node, stride)

        result: dict[int, tuple[CoreAddress, ...]] = {}
        for node_idx, ranks in enumerate(buckets):
            cursor = 0
            for rank in ranks:
                window = order[cursor:cursor + self.threads_per_rank]
                cursor += self.threads_per_rank
                if self.allocation.method == "domain-pack" and stride == 1:
                    window = self._align_to_domain(order, window, cursor)
                    cursor = window[-1] + 1  # order is identity at stride 1
                if len(window) < self.threads_per_rank or max(window) >= cores_per_node:
                    raise PlacementError(
                        f"rank {rank} does not fit on node {node_idx} "
                        f"(domain padding exhausted the cores)"
                    )
                addrs = tuple(
                    cluster.address_of(node_idx * cores_per_node + local)
                    for local in window
                )
                result[rank] = addrs
        self._validate_no_oversubscription(result)
        return result

    def _align_to_domain(self, order: list[int], window: list[int],
                         cursor: int) -> list[int]:
        """For domain-pack: avoid windows straddling a domain boundary."""
        per_dom = self._node_cores_per_domain
        if self.threads_per_rank > per_dom:
            return window  # cannot fit in one domain; leave as block
        first_dom = window[0] // per_dom
        last_dom = window[-1] // per_dom
        if first_dom == last_dom:
            return window
        # skip to the start of the next domain
        start = (first_dom + 1) * per_dom
        return list(range(start, start + self.threads_per_rank))

    def _validate_no_oversubscription(
        self, result: dict[int, tuple[CoreAddress, ...]]
    ) -> None:
        seen: set[CoreAddress] = set()
        for rank, addrs in result.items():
            for a in addrs:
                if a in seen:
                    raise PlacementError(
                        f"core {a} assigned to more than one thread (rank {rank})"
                    )
                seen.add(a)

    # ------------------------------------------------------------------
    def thread_cores(self, rank: int) -> tuple[CoreAddress, ...]:
        try:
            return self.thread_map[rank]
        except KeyError:
            raise PlacementError(f"rank {rank} not in placement") from None

    @cached_property
    def threads_per_domain(self) -> dict[tuple[int, int, int], int]:
        """(node, chip, domain) -> number of pinned threads (all ranks)."""
        census: dict[tuple[int, int, int], int] = {}
        for addrs in self.thread_map.values():
            for a in addrs:
                key = (a.node, a.chip, a.domain)
                census[key] = census.get(key, 0) + 1
        return census

    def home_domain(self, rank: int) -> tuple[int, int, int]:
        """Domain of the rank's master thread (serial first-touch home)."""
        a = self.thread_cores(rank)[0]
        return (a.node, a.chip, a.domain)

    def node_of(self, rank: int) -> int:
        return self.thread_cores(rank)[0].node

    def domains_spanned(self, rank: int) -> int:
        """Number of distinct NUMA domains a rank's threads touch."""
        return len({(a.node, a.chip, a.domain) for a in self.thread_cores(rank)})

    def describe(self) -> str:
        return (
            f"{self.n_ranks} ranks x {self.threads_per_rank} threads, "
            f"alloc={self.allocation.label()}, bind={self.binding.label()} "
            f"on {self.cluster.name}"
        )
