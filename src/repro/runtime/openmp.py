"""Fork-join OpenMP parallel-region timing.

Given a compiled kernel, a region descriptor and the rank's thread
placement, computes how long the region takes:

* iterations are split over threads by the schedule (static / dynamic /
  guided);
* each thread's memory and L2 bandwidth share comes from the *static
  contention census* — how many threads (of any rank) are pinned to its
  NUMA domain (SPMD codes keep all pinned threads simultaneously active in
  compute phases, so the census is the right stand-in for dynamic
  contention);
* under ``"serial-init"`` data policy, a thread running outside the rank's
  home domain accesses its data remotely (home-domain bandwidth derated by
  the chip's remote-access fraction) — the first-touch NUMA effect that
  makes long thread strides lose on single-rank runs;
* fork/join overhead grows with the thread count and with the number of
  domains spanned (the barrier crosses the ring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.kernels.timing import PhaseTiming, phase_time
from repro.machine.topology import Cluster, CoreAddress
from repro.units import US

if TYPE_CHECKING:  # pragma: no cover
    from repro.compile.compiler import CompiledKernel
    from repro.runtime.program import Compute

#: Data-placement policies.
DATA_POLICIES = ("first-touch", "serial-init")

_FORK_BASE_S = 0.5 * US
_FORK_PER_THREAD_S = 0.04 * US
_FORK_PER_DOMAIN_S = 0.15 * US
_DYNAMIC_CHUNK_S = 0.08 * US
_DYNAMIC_CHUNKS_PER_THREAD = 16


@dataclass(frozen=True)
class RegionTiming:
    """Outcome of one parallel region on one rank.

    ``worst`` is the critical thread's :class:`PhaseTiming` and
    ``n_threads`` the region's thread count — the instrumentation record
    the simulated PMU (:mod:`repro.perf`) turns into counters.  Both are
    references to data the timing computed anyway, so attaching them
    costs nothing when profiling is off.
    """

    seconds: float
    flops: float
    dram_bytes: float
    bound: str
    max_thread_seconds: float
    overhead_seconds: float
    worst: PhaseTiming | None = None
    n_threads: int = 1

    def scaled(self, factor: float) -> "RegionTiming":
        """This region stretched by ``factor`` (uniform core slowdown).

        Wall time, critical-thread time, overhead, and the attached
        :class:`PhaseTiming` all scale together, so the simulated PMU's
        cycle accounting stays conservation-exact under straggler
        injection (attributed cycles still equal wall x frequency).
        """
        if factor == 1.0:
            return self
        import dataclasses

        return dataclasses.replace(
            self,
            seconds=self.seconds * factor,
            max_thread_seconds=self.max_thread_seconds * factor,
            overhead_seconds=self.overhead_seconds * factor,
            worst=None if self.worst is None else self.worst.scaled(factor),
        )


def fork_join_overhead(n_threads: int, n_domains: int) -> float:
    """Fork + join cost of one parallel region, seconds."""
    if n_threads < 1 or n_domains < 1:
        raise ConfigurationError("thread/domain counts must be positive")
    if n_threads == 1:
        return 0.0
    return (
        _FORK_BASE_S
        + _FORK_PER_THREAD_S * n_threads
        + _FORK_PER_DOMAIN_S * (n_domains - 1)
    )


def _thread_iters(total: float, n_threads: int, schedule: str,
                  imbalance: float) -> tuple[float, float]:
    """(max-thread iterations, per-chunk overhead seconds) for a schedule."""
    mean = total / n_threads
    if schedule == "static":
        return mean * imbalance, 0.0
    if schedule == "dynamic":
        # dynamic rebalances the imbalance away at a per-chunk cost
        residual = 1.0 + (imbalance - 1.0) * 0.15
        return mean * residual, _DYNAMIC_CHUNK_S * _DYNAMIC_CHUNKS_PER_THREAD
    if schedule == "guided":
        residual = 1.0 + (imbalance - 1.0) * 0.25
        return mean * residual, _DYNAMIC_CHUNK_S * (_DYNAMIC_CHUNKS_PER_THREAD // 2)
    raise ConfigurationError(f"unknown schedule {schedule!r}")


def region_time(
    ck: "CompiledKernel",
    op: "Compute",
    thread_addrs: tuple[CoreAddress, ...],
    cluster: Cluster,
    threads_per_domain: dict[tuple[int, int, int], int],
    home_domain: tuple[int, int, int],
    data_policy: str = "first-touch",
) -> RegionTiming:
    """Time one :class:`~repro.runtime.program.Compute` region for a rank."""
    if data_policy not in DATA_POLICIES:
        raise ConfigurationError(f"unknown data policy {data_policy!r}")
    if not thread_addrs:
        raise ConfigurationError("a region needs at least one thread")

    if op.serial:
        thread_addrs = thread_addrs[:1]
    n_threads = len(thread_addrs)
    max_iters, chunk_overhead = _thread_iters(
        op.iters, n_threads, op.schedule, op.imbalance
    )

    # Within a rank, threads co-resident in a shared L2 share their reuse
    # footprint constructively (halo planes, tables); approximate by
    # shrinking the per-thread working set with the rank's thread count in
    # that domain, floored at 30%.
    domains = {(a.node, a.chip, a.domain) for a in thread_addrs}
    n_domains = len(domains)

    home_dom_spec = cluster.node.chips[home_domain[1]].domains[home_domain[2]]
    home_active = max(1, threads_per_domain.get(home_domain, 1))

    worst: PhaseTiming | None = None
    for a in thread_addrs:
        dom = cluster.domain_spec(a)
        key = (a.node, a.chip, a.domain)
        active = max(1, threads_per_domain.get(key, 1))

        if data_policy == "serial-init" and key != home_domain:
            # Remote access: the thread competes for the *home* domain's
            # bandwidth with everything pinned there, further derated by
            # the on-chip ring.
            chip = cluster.node.chips[a.chip]
            mem_share = (
                home_dom_spec.memory.per_stream_bandwidth(home_active)
                * chip.remote_access_fraction
            )
        else:
            mem_share = dom.memory.per_stream_bandwidth(active)
        l2_share = dom.l2_bandwidth_share(active)

        rank_threads_here = sum(
            1 for b in thread_addrs if (b.node, b.chip, b.domain) == key
        )
        ws_scale = op.working_set_scale
        if dom.l2.shared and rank_threads_here > 1:
            ws_scale *= max(0.3, 1.0 / rank_threads_here ** 0.5)

        pt = phase_time(
            ck,
            max_iters,
            dom.core,
            dom.l1d,
            dom.l2,
            mem_bandwidth_share=mem_share,
            l2_bandwidth_share=l2_share,
            mem_latency_s=dom.memory.latency_s,
            working_set_scale=ws_scale,
        )
        if worst is None or pt.seconds > worst.seconds:
            worst = pt

    assert worst is not None
    overhead = 0.0 if op.serial else fork_join_overhead(n_threads, n_domains)
    overhead += chunk_overhead
    total_flops = ck.kernel.flops * op.iters
    # DRAM volume scales with the full iteration count, not the max thread.
    dram = worst.dram_bytes / max_iters * op.iters if max_iters > 0 else 0.0
    return RegionTiming(
        seconds=worst.seconds + overhead,
        flops=total_flops,
        dram_bytes=dram,
        bound=worst.bound,
        max_thread_seconds=worst.seconds,
        overhead_seconds=overhead,
        worst=worst,
        n_threads=n_threads,
    )
