"""Timeline rendering and trace export.

Two consumers:

* humans — :func:`ascii_timeline` renders a per-rank Gantt chart in the
  terminal (one row per rank, one glyph per time bucket, majority
  category wins the bucket);
* tools — :func:`to_chrome_trace` exports the run as a Chrome
  ``chrome://tracing`` / Perfetto JSON object (one "thread" per rank);
  with a :class:`~repro.perf.profile.Profile` attached it adds per-rank
  counter tracks (``ph: "C"``) showing GFLOP/s and memory GB/s while
  each region runs.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.runtime.executor import RunResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.perf.profile import Profile

#: Glyph per category for the ASCII chart.
GLYPHS = {
    "compute": "#",
    "serial": "s",
    "p2p": "~",
    "collective": "+",
    "sleep": ".",
    "idle": " ",
}


def ascii_timeline(result: RunResult, width: int = 80,
                   max_ranks: int = 16) -> str:
    """Render the run as a fixed-width Gantt chart.

    Each row is a rank; each column a ``elapsed / width`` bucket; the glyph
    is the category occupying most of the bucket (idle if none).
    """
    if width < 10:
        raise ConfigurationError("timeline width must be >= 10")
    if result.elapsed <= 0:
        return "(empty run)"
    bucket = result.elapsed / width
    lines = [
        f"timeline of {result.job_name!r} "
        f"({result.elapsed * 1e3:.3f} ms, {len(result.traces)} ranks)",
        "legend: " + "  ".join(f"{g}={c}" for c, g in GLYPHS.items()
                               if c != "idle"),
    ]
    ranks = sorted(result.traces)
    shown = ranks[:max_ranks]
    for rank in shown:
        trace = result.traces[rank]
        occupancy = [dict() for _ in range(width)]
        for seg in trace.segments:
            first = min(width - 1, int(seg.start / bucket))
            last = min(width - 1, int(seg.end / bucket))
            for b in range(first, last + 1):
                lo = max(seg.start, b * bucket)
                hi = min(seg.end, (b + 1) * bucket)
                if hi > lo:
                    occ = occupancy[b]
                    occ[seg.category] = occ.get(seg.category, 0.0) + hi - lo
        row = []
        for occ in occupancy:
            if not occ:
                row.append(GLYPHS["idle"])
            else:
                top = max(occ, key=occ.__getitem__)
                row.append(GLYPHS.get(top, "?"))
        lines.append(f"rank {rank:>4} |{''.join(row)}|")
    if len(ranks) > max_ranks:
        lines.append(f"... ({len(ranks) - max_ranks} more ranks)")
    return "\n".join(lines)


def _counter_events(result: RunResult, profile: "Profile") -> list[dict]:
    """Chrome counter-track events (``ph: "C"``) from a PMU profile.

    Each compute/serial segment contributes a step up to the region's
    average GFLOP/s and memory GB/s on its rank's counter tracks, and a
    step back to zero when it ends — the sampled-rate view fapp/Perfetto
    users expect next to the region swim-lanes.
    """
    events: list[dict] = []
    for rank, trace in sorted(result.traces.items()):
        for seg in trace.segments:
            if seg.category not in ("compute", "serial"):
                continue
            rp = profile.rank_regions.get((rank, seg.label))
            if rp is None or rp.seconds_total <= 0:
                continue
            gflops = rp.counters.flops / rp.seconds_total / 1e9
            gbytes = rp.counters.mem_bytes / rp.seconds_total / 1e9
            for name, value in ((f"rank {rank} GFLOP/s", gflops),
                                (f"rank {rank} mem GB/s", gbytes)):
                events.append({
                    "name": name, "ph": "C", "pid": 0, "tid": rank,
                    "ts": seg.start * 1e6, "args": {"value": value},
                })
                events.append({
                    "name": name, "ph": "C", "pid": 0, "tid": rank,
                    "ts": seg.end * 1e6, "args": {"value": 0.0},
                })
    return events


def to_chrome_trace(result: RunResult,
                    profile: "Profile | None" = None) -> dict:
    """Export as a Chrome trace-event JSON object (microsecond units).

    ``profile`` (from :func:`repro.perf.profile_job`) adds per-rank
    GFLOP/s and memory-bandwidth counter tracks to the swim-lanes.
    """
    events = []
    for rank, trace in sorted(result.traces.items()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": rank,
            "args": {"name": f"rank {rank}"},
        })
        for seg in trace.segments:
            events.append({
                "name": seg.label or seg.category,
                "cat": seg.category,
                "ph": "X",
                "pid": 0,
                "tid": rank,
                "ts": seg.start * 1e6,
                "dur": seg.duration * 1e6,
            })
    if profile is not None:
        events.extend(_counter_events(result, profile))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"job": result.job_name,
                      "placement": result.placement_label},
    }


def write_chrome_trace(result: RunResult, path: str,
                       profile: "Profile | None" = None) -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(result, profile), fh)


def utilization_profile(result: RunResult, buckets: int = 50) -> list[float]:
    """Fraction of ranks computing in each time bucket (load curve)."""
    if buckets < 1:
        raise ConfigurationError("buckets must be >= 1")
    if result.elapsed <= 0:
        return [0.0] * buckets
    dt = result.elapsed / buckets
    n_ranks = len(result.traces)
    busy = [0.0] * buckets
    for trace in result.traces.values():
        for seg in trace.segments:
            if seg.category not in ("compute", "serial"):
                continue
            first = min(buckets - 1, int(seg.start / dt))
            last = min(buckets - 1, int(seg.end / dt))
            for b in range(first, last + 1):
                lo = max(seg.start, b * dt)
                hi = min(seg.end, (b + 1) * dt)
                if hi > lo:
                    busy[b] += (hi - lo)
    return [min(1.0, b / (dt * n_ranks)) for b in busy]
