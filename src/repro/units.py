"""Physical units and formatting helpers.

All quantities in the library use SI base units internally:

* time        — seconds
* frequency   — hertz
* bandwidth   — bytes / second
* capacity    — bytes
* rates       — operations / second (e.g. FLOP/s)

These helpers exist so that hardware catalogs and experiment configs can be
written in natural units (``2.0 * GHZ``, ``32 * KIB``) without magic numbers.
"""

from __future__ import annotations

# --- capacities (binary prefixes — caches and memories are sized in powers of 2)
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# --- decimal prefixes (rates, bandwidths, frequencies)
KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000

KHZ = KILO
MHZ = MEGA
GHZ = GIGA

# bandwidths are quoted by vendors in decimal GB/s
KB_S = KILO
MB_S = MEGA
GB_S = GIGA

# time
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
NS = NANO
US = MICRO
MS = MILLI

#: Bytes per IEEE-754 double; used throughout the kernel models.
FP64_BYTES = 8
FP32_BYTES = 4


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary prefix (``"8.0 MiB"``)."""
    n = float(n)
    for unit, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(ops_per_s: float, suffix: str = "FLOP/s") -> str:
    """Format an operation rate with a decimal prefix (``"3.07 TFLOP/s"``)."""
    v = float(ops_per_s)
    for unit, scale in (("T", TERA), ("G", GIGA), ("M", MEGA), ("K", KILO)):
        if abs(v) >= scale:
            return f"{v / scale:.2f} {unit}{suffix}"
    return f"{v:.2f} {suffix}"


def fmt_bw(bytes_per_s: float) -> str:
    """Format a bandwidth (``"1024.0 GB/s"``)."""
    return f"{bytes_per_s / GB_S:.1f} GB/s"


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (``"12.3 ms"``)."""
    s = float(seconds)
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    if abs(s) >= MILLI:
        return f"{s / MILLI:.3f} ms"
    if abs(s) >= MICRO:
        return f"{s / MICRO:.3f} us"
    return f"{s / NANO:.1f} ns"
