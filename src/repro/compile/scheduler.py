"""Instruction-scheduling / software-pipelining model.

The A64FX's long FP latency (9 cycles) and small effective out-of-order
window mean the hardware alone cannot keep its two FMA pipes filled on
low-ILP loops; the Fujitsu compiler's software pipelining and instruction
scheduling expose cross-iteration parallelism statically.  This module
converts the scheduling-related options into

* a ``scheduling_boost`` multiplier consumed by
  :meth:`repro.machine.core.CoreSpec.pipeline_fill`, and
* an ``ilp_effective`` (unrolling and loop fission genuinely increase the
  independent operations available per window).
"""

from __future__ import annotations

from repro.compile.options import CompilerOptions
from repro.kernels.kernel import LoopKernel

#: Multipliers for each scheduling level.  "default" is ordinary list
#: scheduling; "aggressive" is software pipelining (-Kswp).
_SCHED_BOOST = {"none": 1.0, "default": 1.3, "aggressive": 1.9}

#: Fission relieves register pressure / OoO-resource exhaustion on fat
#: loops, letting the scheduler realize more of its boost.
_FISSION_BOOST = 1.25

#: Fission also shortens the live working set of each split loop a little
#: at the cost of re-streaming intermediates; net traffic effect is small
#: and we deliberately leave traffic untouched.

#: Unrolling grows the independent-op pool sub-linearly (register limits).
_UNROLL_EXPONENT = 0.5


def scheduling_boost(kernel: LoopKernel, options: CompilerOptions) -> float:
    """Static-scheduling multiplier on the pipeline-fill parallelism."""
    boost = _SCHED_BOOST[options.scheduling]
    if options.loop_fission:
        boost *= _FISSION_BOOST
    # Scheduling can't conjure parallelism out of a strict recurrence:
    # kernels with ilp ~ 1 (dependent chains) barely benefit.
    dependence_limit = min(1.0, kernel.ilp / 2.0)
    return 1.0 + (boost - 1.0) * dependence_limit


def effective_ilp(kernel: LoopKernel, options: CompilerOptions) -> float:
    """Independent FP operations per window after unrolling."""
    ilp = kernel.ilp
    if options.unroll > 1:
        ilp *= options.unroll ** _UNROLL_EXPONENT
    return ilp


def prefetch_quality(kernel: LoopKernel, options: CompilerOptions) -> float:
    """How completely streaming-latency is hidden, in [0, 1].

    Hardware prefetchers handle unit-stride streams well even at
    ``prefetch="off"``; software prefetch mainly helps the strided part.
    """
    base = {"off": 0.7, "auto": 0.9, "aggressive": 1.0}[options.prefetch]
    # Indirect access defeats prefetching; weight by contiguity.
    return base * (0.5 + 0.5 * kernel.contiguous_fraction)
