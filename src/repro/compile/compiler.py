"""The compiler front door: lower loop kernels to compiled kernels."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compile import scheduler, vectorizer
from repro.compile.options import CompilerOptions
from repro.errors import CompileError
from repro.kernels.kernel import LoopKernel
from repro.machine.core import CoreSpec
from repro.units import FP64_BYTES


@dataclass(frozen=True)
class CompiledKernel:
    """A loop kernel lowered for one target core with one option set.

    The timing model (:func:`repro.kernels.timing.phase_time`) consumes
    exactly these fields.
    """

    kernel: LoopKernel
    options: CompilerOptions
    target: CoreSpec
    vec_fraction_achieved: float
    ilp_effective: float
    scheduling_boost: float
    prefetch_quality: float
    int_vectorized: bool
    simd_bits_used: int

    @property
    def simd_lanes_used(self) -> int:
        return self.simd_bits_used // (FP64_BYTES * 8)


class Compiler:
    """Lowers :class:`LoopKernel` objects for a target core.

    Stateless apart from the option set; a single instance is typically
    shared across all phases of a job.
    """

    def __init__(self, options: CompilerOptions | None = None) -> None:
        self.options = options or CompilerOptions()

    def compile(self, kernel: LoopKernel, target: CoreSpec) -> CompiledKernel:
        """Lower one kernel.

        Raises
        ------
        CompileError
            If the requested vector-length cap exceeds the target's SIMD
            width in a way that cannot be honoured (wider-than-native is
            silently clamped; a cap below 128 bits is rejected upstream by
            option validation, so this only fires on inconsistent targets).
        """
        opts = self.options
        simd_bits = vectorizer.effective_simd_bits(target, opts)
        if simd_bits < 64:
            raise CompileError(
                f"target {target.name} cannot execute {simd_bits}-bit vectors"
            )
        vec = vectorizer.vectorized_fraction(kernel, opts, target)
        return CompiledKernel(
            kernel=kernel,
            options=opts,
            target=target,
            vec_fraction_achieved=vec,
            ilp_effective=scheduler.effective_ilp(kernel, opts),
            scheduling_boost=scheduler.scheduling_boost(kernel, opts),
            prefetch_quality=scheduler.prefetch_quality(kernel, opts),
            int_vectorized=vectorizer.int_vectorized(kernel, opts, target),
            simd_bits_used=simd_bits,
        )

    def compile_many(self, kernels: dict[str, LoopKernel],
                     target: CoreSpec) -> dict[str, CompiledKernel]:
        """Lower a named kernel set (one miniapp's phases) for one target."""
        return {name: self.compile(k, target) for name, k in kernels.items()}
