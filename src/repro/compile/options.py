"""Compiler option vectors and the named presets used in the experiments."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Valid instruction-scheduling levels, in increasing aggressiveness.
SCHEDULING_LEVELS = ("none", "default", "aggressive")

#: Valid software-prefetch settings.
PREFETCH_LEVELS = ("off", "auto", "aggressive")


@dataclass(frozen=True)
class CompilerOptions:
    """One compiler configuration.

    Parameters
    ----------
    simd:
        Auto-vectorization enabled (``-Ksimd`` / ``-xHost``).
    simd_width_bits:
        Optional cap on the vector length used (SVE is vector-length
        agnostic: the same binary can run at 128/256/512).  ``None`` means
        the target's native width.
    scheduling:
        Instruction-scheduling / software-pipelining level
        (``-Kswp`` family): ``"none"``, ``"default"``, ``"aggressive"``.
    unroll:
        Loop unroll factor requested.
    loop_fission:
        The Fujitsu compiler's loop-fission transformation (splits fat
        loops to relieve register pressure and OoO-resource exhaustion).
    prefetch:
        Software prefetch insertion: ``"off"``, ``"auto"``, ``"aggressive"``.
    """

    simd: bool = True
    simd_width_bits: int | None = None
    scheduling: str = "default"
    unroll: int = 1
    loop_fission: bool = False
    prefetch: str = "auto"

    def __post_init__(self) -> None:
        if self.scheduling not in SCHEDULING_LEVELS:
            raise ConfigurationError(
                f"scheduling must be one of {SCHEDULING_LEVELS}, got {self.scheduling!r}"
            )
        if self.prefetch not in PREFETCH_LEVELS:
            raise ConfigurationError(
                f"prefetch must be one of {PREFETCH_LEVELS}, got {self.prefetch!r}"
            )
        if self.unroll < 1:
            raise ConfigurationError("unroll must be >= 1")
        if self.simd_width_bits is not None:
            if self.simd_width_bits % 128 != 0 or self.simd_width_bits < 128:
                raise ConfigurationError("simd_width_bits must be a multiple of 128")

    def with_(self, **kwargs) -> "CompilerOptions":
        """Functional update (``opts.with_(loop_fission=True)``)."""
        return replace(self, **kwargs)

    def label(self) -> str:
        """Short label for report columns."""
        parts = []
        parts.append("simd" if self.simd else "nosimd")
        if self.simd_width_bits is not None:
            parts.append(f"vl{self.simd_width_bits}")
        parts.append(f"sched-{self.scheduling}")
        if self.unroll > 1:
            parts.append(f"u{self.unroll}")
        if self.loop_fission:
            parts.append("fission")
        if self.prefetch != "auto":
            parts.append(f"pf-{self.prefetch}")
        return ",".join(parts)


#: Presets mirroring the option sets swept in the compiler-tuning experiment
#: (F4): the shipped "as-is" build, progressively tuned builds, and the
#: fully tuned Fujitsu-style `-Kfast` build.
PRESETS: dict[str, CompilerOptions] = {
    # As shipped: conservative build (what the suite's default makefiles do
    # before any A64FX-specific tuning).
    "as-is": CompilerOptions(simd=False, scheduling="none", prefetch="off"),
    # Turn the auto-vectorizer on.
    "+simd": CompilerOptions(simd=True, scheduling="none", prefetch="off"),
    # Additionally let the scheduler software-pipeline the loops.
    "+simd+sched": CompilerOptions(simd=True, scheduling="aggressive", prefetch="auto"),
    # Full tuned build: scheduling, fission, unrolling and prefetch.
    "tuned": CompilerOptions(
        simd=True, scheduling="aggressive", unroll=4, loop_fission=True,
        prefetch="aggressive",
    ),
    # The default used for the placement experiments (a typical -Kfast).
    "kfast": CompilerOptions(simd=True, scheduling="aggressive", unroll=2,
                             prefetch="auto"),
}
