"""Compiler model: what the Fujitsu/GNU/Intel compilers make of a loop.

The paper's tuning result is that the poor "as-is" A64FX performance of some
miniapps is recovered by *enhancing SIMD vectorization* and *changing
instruction scheduling* at compile time (plus the Fujitsu compiler's loop
fission).  This package models exactly those levers:

* :class:`~repro.compile.options.CompilerOptions` — the option vector
  (SIMD on/off and width cap, scheduling level, unrolling, loop fission,
  prefetch), with the named presets used in the experiments.
* :mod:`~repro.compile.vectorizer` — how much of a kernel's vectorizable
  work the compiler actually vectorizes (gathers need wide-SIMD gather
  instructions; NEON has none).
* :mod:`~repro.compile.scheduler` — software pipelining / instruction
  scheduling as an ILP multiplier, plus fission and unrolling effects.
* :class:`~repro.compile.compiler.Compiler` — lowers a
  :class:`~repro.kernels.kernel.LoopKernel` to a
  :class:`~repro.compile.compiler.CompiledKernel` for a target core.
"""

from repro.compile.options import CompilerOptions, PRESETS
from repro.compile.compiler import CompiledKernel, Compiler

__all__ = ["CompilerOptions", "PRESETS", "CompiledKernel", "Compiler"]
