"""Auto-vectorization model.

Decides which fraction of a kernel's vectorizable FLOPs the compiler
actually turns into SIMD instructions on a given target.  The structural
limits:

* the kernel's own ``vec_fraction`` is a hard ceiling (data dependences);
* contiguous accesses vectorize almost perfectly;
* indirect accesses need hardware gather/scatter instructions — SVE and
  AVX-512 have them (at reduced efficiency), 128-bit NEON does not, so the
  compiler falls back to scalar code for those loops;
* a vector-length cap (:attr:`CompilerOptions.simd_width_bits`) reduces the
  effective lanes, modeled downstream by
  :meth:`effective_simd_bits`.
"""

from __future__ import annotations

from repro.compile.options import CompilerOptions
from repro.kernels.kernel import LoopKernel
from repro.machine.core import CoreSpec

#: Vectorization efficiency of unit-stride loops (loop remainders,
#: alignment peeling).
_CONTIGUOUS_EFFICIENCY = 0.95

#: Efficiency of vectorized gather loops on ISAs with gather support.
_GATHER_EFFICIENCY_WIDE = 0.65

#: ISAs without gather support (128-bit NEON/HPC-ACE): indirect loops stay
#: scalar apart from occasional manual packing.
_GATHER_EFFICIENCY_NARROW = 0.15


def has_gather_support(core: CoreSpec) -> bool:
    """Whether the target ISA provides gather/scatter vector loads.

    SVE (A64FX) and AVX-512 (Skylake) do; 128-bit NEON (ThunderX2) and
    HPC-ACE (SPARC64 VIIIfx) do not.  SIMD width is a faithful proxy for
    the processors in this study.
    """
    return core.simd_bits >= 256


def effective_simd_bits(core: CoreSpec, options: CompilerOptions) -> int:
    """Vector width the compiled code uses (respecting the VL cap)."""
    if options.simd_width_bits is None:
        return core.simd_bits
    return min(core.simd_bits, options.simd_width_bits)


def vectorized_fraction(kernel: LoopKernel, options: CompilerOptions,
                        core: CoreSpec) -> float:
    """Fraction of the kernel's FLOPs executed as SIMD instructions."""
    if not options.simd:
        return 0.0
    gather_eff = (
        _GATHER_EFFICIENCY_WIDE if has_gather_support(core)
        else _GATHER_EFFICIENCY_NARROW
    )
    access_eff = (
        kernel.contiguous_fraction * _CONTIGUOUS_EFFICIENCY
        + (1.0 - kernel.contiguous_fraction) * gather_eff
    )
    return kernel.vec_fraction * access_eff


def int_vectorized(kernel: LoopKernel, options: CompilerOptions,
                   core: CoreSpec) -> bool:
    """Whether the integer work is vectorized (byte-SIMD).

    Requires the kernel to be amenable, SIMD enabled, and an aggressive
    scheduling level (the Fujitsu compiler only SIMD-izes these loops with
    tuning directives, which is the `+simd+sched` / `tuned` scenario of the
    paper's compiler experiment).
    """
    return (
        kernel.int_vectorizable
        and options.simd
        and options.scheduling == "aggressive"
        and core.simd_bits >= 128
    )
