"""The Fiber Miniapp Suite.

Eight miniapps, each carrying (i) a real executable NumPy implementation of
its numerical core (``physics``) and (ii) a performance skeleton replayed
on the simulator (``skeleton``).  :data:`SUITE` is the registry the
experiments iterate over.
"""

from repro.miniapps.base import Dataset, MiniApp
from repro.miniapps.ccs_qcd import CcsQcd
from repro.miniapps.ffb import Ffb
from repro.miniapps.ffvc import Ffvc
from repro.miniapps.modylas import Modylas
from repro.miniapps.mvmc import Mvmc
from repro.miniapps.ngsa import Ngsa
from repro.miniapps.nicam import NicamDc
from repro.miniapps.ntchem import NtChem

#: All eight Fiber miniapps, keyed by short name.
SUITE: dict[str, MiniApp] = {
    app.name: app
    for app in (
        CcsQcd(),
        Ffvc(),
        NicamDc(),
        Mvmc(),
        Ngsa(),
        Modylas(),
        NtChem(),
        Ffb(),
    )
}


def by_name(name: str) -> MiniApp:
    """Look a miniapp up by its short name."""
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown miniapp {name!r}; available: {sorted(SUITE)}"
        ) from None


__all__ = ["Dataset", "MiniApp", "SUITE", "by_name",
           "CcsQcd", "Ffvc", "NicamDc", "Mvmc", "Ngsa", "Modylas",
           "NtChem", "Ffb"]
