"""Miniapp abstraction.

Each Fiber miniapp is represented twice:

* ``physics.py`` — a *real, executable* NumPy implementation of the
  algorithm (a BiCGStab lattice solver, a pressure-Poisson CFD step, an MD
  integrator, ...), validated by the test suite.  This keeps the
  reproduction honest: the kernels we time are kernels we actually run.
* ``skeleton.py`` — the *performance skeleton*: the per-rank phase program
  (compute kernels + MPI operations per solver iteration / timestep) that
  the simulator replays on the machine model, parameterized by the data
  set.

:class:`MiniApp` binds the two together and provides ``build_job`` — the
one-liner the experiments use.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.compile.options import CompilerOptions, PRESETS
from repro.errors import DatasetError
from repro.kernels.kernel import LoopKernel
from repro.machine.topology import Cluster
from repro.runtime.executor import Job
from repro.runtime.placement import JobPlacement


@dataclass(frozen=True)
class Dataset:
    """One named problem configuration of a miniapp.

    ``"as-is"`` mirrors the data set shipped with the Fiber suite (small —
    the configuration whose poor out-of-the-box A64FX performance the paper
    discusses); ``"large"`` is a production-scale strong-scaling set.
    """

    name: str
    description: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        try:
            return self.params[key]
        except KeyError:
            raise DatasetError(
                f"dataset {self.name!r} has no parameter {key!r}"
            ) from None


class MiniApp(abc.ABC):
    """One miniapp of the suite."""

    #: Short identifier ("ccs-qcd").
    name: str = ""
    #: Full name as in the suite ("CCS QCD Solver Benchmark").
    full_name: str = ""
    #: One-line description of algorithm + domain.
    description: str = ""
    #: Dominant performance character ("memory", "compute", "integer",
    #: "mixed") — used by the report tables.
    character: str = "mixed"

    def __init__(self) -> None:
        if not self.name:
            raise TypeError(f"{type(self).__name__} must set a name")
        self._datasets = {d.name: d for d in self.make_datasets()}
        if "as-is" not in self._datasets:
            raise DatasetError(f"{self.name}: every miniapp needs an 'as-is' dataset")

    # ------------------------------------------------------------------
    # subclass API
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def make_datasets(self) -> list[Dataset]:
        """The data sets this app supports (must include ``as-is``)."""

    @abc.abstractmethod
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        """Named loop kernels of this app for one dataset."""

    @abc.abstractmethod
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        """Rank-program factory for one dataset and rank count."""

    def communicators(self, n_ranks: int) -> dict[str, tuple[int, ...]] | None:
        """Extra communicators (default: none beyond world)."""
        return None

    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     builder) -> None:
        """Closed-form per-rank profile for the analytic engine.

        Subclasses override this to fill a
        :class:`~repro.analytic.profile.SummaryBuilder` with rank
        ``rank``'s compute groups, collectives, exchanges, and I/O using
        plain arithmetic — mirroring ``make_program`` without building a
        single op.  The default raises :class:`NotImplementedError`,
        which ``analytic_profile`` treats as "use the replay fallback".
        The equivalence tests check every closed form against the
        replayed oracle, so the two can never drift silently.
        """
        raise NotImplementedError

    def analytic_profile(self, dataset: Dataset, n_ranks: int):
        """Placement-independent profile for the analytic engine.

        Prefers the app's ``rank_summary`` closed form (fast: no op
        stream is ever constructed); falls back to symbolic replay of
        the real rank programs when no closed form exists.
        """
        from repro.analytic.profile import (
            profile_from_replay,
            profile_from_summaries,
        )

        try:
            return profile_from_summaries(
                self.name, dataset.name, n_ranks,
                lambda rank, b: self.rank_summary(dataset, n_ranks, rank, b),
            )
        except NotImplementedError:
            return profile_from_replay(
                self.name, dataset.name,
                self.make_program(dataset, n_ranks), n_ranks,
            )

    def weak_dataset(self, factor: int) -> Dataset:
        """A dataset grown by ``factor`` for weak-scaling studies.

        Grid-decomposed apps override this; others raise
        :class:`~repro.errors.DatasetError`.
        """
        raise DatasetError(
            f"{self.name} does not define weak-scaling datasets"
        )

    def register_dataset(self, dataset: Dataset) -> None:
        """Add a (generated) dataset so ``build_job`` can reference it."""
        self._datasets[dataset.name] = dataset

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def datasets(self) -> dict[str, Dataset]:
        return dict(self._datasets)

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise DatasetError(
                f"{self.name} has no dataset {name!r}; "
                f"available: {sorted(self._datasets)}"
            ) from None

    def build_job(
        self,
        cluster: Cluster,
        placement: JobPlacement,
        dataset: str = "as-is",
        options: CompilerOptions | None = None,
        data_policy: str = "first-touch",
    ) -> Job:
        """Assemble a simulatable :class:`~repro.runtime.executor.Job`."""
        ds = self.dataset(dataset)
        n_ranks = placement.n_ranks
        return Job(
            cluster=cluster,
            placement=placement,
            kernels=self.kernels(ds),
            program=self.make_program(ds, n_ranks),
            options=options if options is not None else PRESETS["kfast"],
            data_policy=data_policy,
            communicators=self.communicators(n_ranks),
            name=f"{self.name}/{dataset}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<MiniApp {self.name}>"
