"""P1 finite-element Poisson machinery with CG (executable).

The structural miniature of FFB-mini's pressure solve:

* a structured triangulation of the unit square (so convergence against
  the analytic solution is checkable), assembled *element by element* with
  indirect scatter-adds — the same access pattern as the unstructured code;
* a matrix-free-style CSR SpMV and a conjugate-gradient solver;
* tests validate the assembled stiffness matrix against
  ``scipy.sparse`` reference assembly, CG against ``scipy`` direct
  solves, and the O(h^2) convergence of the FEM solution.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError


def unit_square_mesh(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Structured triangulation: returns (nodes[np, 2], tris[nt, 3])."""
    if n < 2:
        raise ConfigurationError("mesh needs at least 2 nodes per side")
    xs = np.linspace(0.0, 1.0, n)
    xv, yv = np.meshgrid(xs, xs, indexing="ij")
    nodes = np.stack([xv.ravel(), yv.ravel()], axis=1)

    def nid(i: int, j: int) -> int:
        return i * n + j

    tris = []
    for i in range(n - 1):
        for j in range(n - 1):
            a, b = nid(i, j), nid(i + 1, j)
            c, d = nid(i + 1, j + 1), nid(i, j + 1)
            tris.append((a, b, c))
            tris.append((a, c, d))
    return nodes, np.asarray(tris, dtype=np.int64)


def element_stiffness(coords: np.ndarray) -> tuple[np.ndarray, float]:
    """3x3 P1 stiffness matrix and area of one triangle."""
    if coords.shape != (3, 2):
        raise ConfigurationError("a P1 triangle has 3 nodes in 2D")
    b = np.array([
        coords[1, 1] - coords[2, 1],
        coords[2, 1] - coords[0, 1],
        coords[0, 1] - coords[1, 1],
    ])
    c = np.array([
        coords[2, 0] - coords[1, 0],
        coords[0, 0] - coords[2, 0],
        coords[1, 0] - coords[0, 0],
    ])
    area = 0.5 * abs(
        (coords[1, 0] - coords[0, 0]) * (coords[2, 1] - coords[0, 1])
        - (coords[2, 0] - coords[0, 0]) * (coords[1, 1] - coords[0, 1])
    )
    if area <= 0:
        raise ConfigurationError("degenerate element")
    ke = (np.outer(b, b) + np.outer(c, c)) / (4.0 * area)
    return ke, area


def assemble(nodes: np.ndarray, tris: np.ndarray,
             f: np.ndarray) -> tuple[sp.csr_matrix, np.ndarray]:
    """Element-loop assembly of stiffness matrix and load vector."""
    n_nodes = len(nodes)
    rows, cols, vals = [], [], []
    rhs = np.zeros(n_nodes)
    for tri in tris:
        ke, area = element_stiffness(nodes[tri])
        for a in range(3):
            rhs[tri[a]] += f[tri[a]] * area / 3.0       # lumped load
            for bb in range(3):
                rows.append(tri[a])
                cols.append(tri[bb])
                vals.append(ke[a, bb])
    k = sp.csr_matrix((vals, (rows, cols)), shape=(n_nodes, n_nodes))
    return k, rhs


def apply_dirichlet(k: sp.csr_matrix, rhs: np.ndarray,
                    boundary: np.ndarray) -> tuple[sp.csr_matrix, np.ndarray]:
    """Zero-Dirichlet conditions by row/column elimination."""
    k = k.tolil(copy=True)
    rhs = rhs.copy()
    for node in boundary:
        k.rows[node] = [node]
        k.data[node] = [1.0]
        rhs[node] = 0.0
    k = k.tocsr()
    # symmetrize: zero the boundary columns in interior rows
    mask = np.zeros(k.shape[0], dtype=bool)
    mask[boundary] = True
    coo = k.tocoo()
    keep = ~(mask[coo.col] & ~mask[coo.row])
    k = sp.csr_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=k.shape
    )
    return k, rhs


def conjugate_gradient(
    a: sp.csr_matrix,
    b: np.ndarray,
    tol: float = 1e-10,
    max_iter: int = 5000,
) -> tuple[np.ndarray, int, float]:
    """Plain CG; returns (x, iterations, relative residual)."""
    x = np.zeros_like(b)
    r = b - a @ x
    p = r.copy()
    rs = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    for it in range(1, max_iter + 1):
        ap = a @ p
        alpha = rs / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) / b_norm < tol:
            return x, it, np.sqrt(rs_new) / b_norm
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, max_iter, np.sqrt(rs) / b_norm


def unstructured_mesh(n_interior: int, seed: int = 0,
                      n_boundary_per_side: int = 8
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Genuinely unstructured Delaunay triangulation of the unit square.

    Random interior points plus a regular boundary ring, triangulated with
    ``scipy.spatial.Delaunay`` — the irregular connectivity that gives
    FFB-mini its gather/scatter character.
    """
    from scipy.spatial import Delaunay

    if n_interior < 1 or n_boundary_per_side < 2:
        raise ConfigurationError("mesh needs interior and boundary points")
    rng = np.random.default_rng(seed)
    interior = rng.uniform(0.08, 0.92, (n_interior, 2))
    side = np.linspace(0.0, 1.0, n_boundary_per_side)
    boundary = np.concatenate([
        np.stack([side, np.zeros_like(side)], axis=1),
        np.stack([side, np.ones_like(side)], axis=1),
        np.stack([np.zeros_like(side[1:-1]), side[1:-1]], axis=1),
        np.stack([np.ones_like(side[1:-1]), side[1:-1]], axis=1),
    ])
    nodes = np.concatenate([boundary, interior])
    tri = Delaunay(nodes)
    # drop degenerate slivers (zero-area triangles on the boundary)
    tris = []
    for t in tri.simplices:
        coords = nodes[t]
        area = 0.5 * abs(
            (coords[1, 0] - coords[0, 0]) * (coords[2, 1] - coords[0, 1])
            - (coords[2, 0] - coords[0, 0]) * (coords[1, 1] - coords[0, 1])
        )
        if area > 1e-12:
            tris.append(t)
    return nodes, np.asarray(tris, dtype=np.int64)


def boundary_nodes(nodes: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Indices of nodes on the unit-square boundary."""
    x, y = nodes[:, 0], nodes[:, 1]
    return np.nonzero(
        (np.abs(x) < tol) | (np.abs(x - 1) < tol)
        | (np.abs(y) < tol) | (np.abs(y - 1) < tol)
    )[0]


def solve_poisson_unstructured(
    n_interior: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, float]:
    """Poisson solve on an unstructured mesh; returns
    (numeric, exact-at-nodes, max interior error)."""
    nodes, tris = unstructured_mesh(n_interior, seed)
    x, y = nodes[:, 0], nodes[:, 1]
    f = 2.0 * np.pi ** 2 * np.sin(np.pi * x) * np.sin(np.pi * y)
    exact = np.sin(np.pi * x) * np.sin(np.pi * y)
    k, rhs = assemble(nodes, tris, f)
    k, rhs = apply_dirichlet(k, rhs, boundary_nodes(nodes))
    u, _, _ = conjugate_gradient(k, rhs, tol=1e-11)
    return u, exact, float(np.max(np.abs(u - exact)))


def solve_poisson_fem(n: int) -> tuple[np.ndarray, np.ndarray, float]:
    """Solve -lap(u) = f on the unit square, u=0 on the boundary, with
    ``f`` chosen so that u = sin(pi x) sin(pi y).

    Returns (numeric solution, exact solution at nodes, max error).
    """
    nodes, tris = unit_square_mesh(n)
    x, y = nodes[:, 0], nodes[:, 1]
    f = 2.0 * np.pi ** 2 * np.sin(np.pi * x) * np.sin(np.pi * y)
    exact = np.sin(np.pi * x) * np.sin(np.pi * y)
    k, rhs = assemble(nodes, tris, f)
    boundary = np.nonzero(
        (x == 0.0) | (x == 1.0) | (y == 0.0) | (y == 1.0)
    )[0]
    k, rhs = apply_dirichlet(k, rhs, boundary)
    u, _, _ = conjugate_gradient(k, rhs)
    return u, exact, float(np.max(np.abs(u - exact)))
