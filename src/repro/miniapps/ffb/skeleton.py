"""Performance skeleton of FFB-mini.

Per timestep over a partitioned unstructured mesh:

* element-matrix computation + scatter-add (the gather/scatter kernel —
  ~40 FLOPs/element-node with indirect accumulation);
* ``cg_iters`` conjugate-gradient iterations on the pressure system, each
  an unstructured SpMV (gathers of x through the column index), 2 dot
  products (``Allreduce(8 B)`` each), and an AXPY pass;
* a partition-boundary halo exchange per SpMV.

The indirect accesses make FFB the showcase for the A64FX's 256-byte
cache-line penalty; SIMD-enabled gathers (SVE) recover much of it, which
is the app's role in the compiler-tuning experiment.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.kernels.kernel import LoopKernel
from repro.kernels.presets import fem_element_assembly, spmv_csr
from repro.miniapps import decomp
from repro.miniapps.base import Dataset, MiniApp
from repro.runtime.program import Allreduce, Compute, Irecv, Isend, WaitAll
from repro.units import FP64_BYTES


class Ffb(MiniApp):
    name = "ffb"
    full_name = "FFB-MINI (FrontFlow/blue)"
    description = ("Unstructured FEM large-eddy simulation; "
                   "gather/scatter assembly + CG pressure solve")
    character = "memory"

    def make_datasets(self) -> list[Dataset]:
        return [
            Dataset("as-is", "125k-element mesh, 5 steps, 30 CG iters",
                    {"elements": 125_000, "steps": 5, "cg_iters": 30,
                     "nnz_per_row": 27}),
            Dataset("large", "8M-element mesh, 10 steps, 60 CG iters",
                    {"elements": 8_000_000, "steps": 10, "cg_iters": 60,
                     "nnz_per_row": 27}),
        ]

    # ------------------------------------------------------------------
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        elements = dataset["elements"]
        nnz = dataset["nnz_per_row"]
        nodes = elements                        # ~1 node per element in 3D
        x_bytes = nodes * FP64_BYTES
        assembly = fem_element_assembly()
        spmv = spmv_csr(nnz, min(x_bytes, 8.0 * 1024 * 1024))
        axpy = LoopKernel(
            name="ffb-axpy",
            flops=2.0,
            fma_fraction=1.0,
            bytes_load=2 * FP64_BYTES,
            bytes_store=FP64_BYTES,
            streaming_fraction=1.0,
            vec_fraction=1.0,
            ilp=8.0,
        )
        dot = LoopKernel(
            name="ffb-dot",
            flops=2.0,
            fma_fraction=1.0,
            bytes_load=2 * FP64_BYTES,
            bytes_store=0.0,
            streaming_fraction=1.0,
            vec_fraction=1.0,
            ilp=4.0,
        )
        return {"ffb-assembly": assembly, "ffb-spmv": spmv,
                "ffb-axpy": axpy, "ffb-dot": dot}

    # ------------------------------------------------------------------
    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     b) -> None:
        """Closed form of ``make_program`` (checked against replay)."""
        elements = dataset["elements"]
        steps = dataset["steps"]
        cg_iters = dataset["cg_iters"]
        nnz = dataset["nnz_per_row"]
        my_elems = decomp.split_1d(elements, n_ranks, rank)
        my_rows = my_elems
        cg_total = steps * cg_iters

        b.compute("ffb-axpy", 0.05 * my_rows * steps, regions=steps,
                  serial=True)
        b.compute("ffb-assembly", my_elems * 8 * steps, regions=steps,
                  imbalance=1.15)
        b.compute("ffb-spmv", my_rows * nnz * cg_total, regions=cg_total)
        b.compute("ffb-dot", my_rows * 2 * cg_total,
                  regions=2 * cg_total)
        b.compute("ffb-axpy", 3 * my_rows * cg_total, regions=cg_total)
        b.collective("allreduce", 8, count=2 * cg_total)
        if n_ranks > 1:
            halo_bytes = max(1.0, my_rows ** (2.0 / 3.0)) * 4.0 * FP64_BYTES
            left, right = (rank - 1) % n_ranks, (rank + 1) % n_ranks
            b.exchange(rank, [(right, halo_bytes), (left, halo_bytes)],
                       count=cg_total)

    # ------------------------------------------------------------------
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        elements = dataset["elements"]
        steps = dataset["steps"]
        cg_iters = dataset["cg_iters"]
        nnz = dataset["nnz_per_row"]

        def program(rank: int, size: int) -> Iterator:
            my_elems = decomp.split_1d(elements, size, rank)
            my_rows = my_elems
            # partition-boundary nodes ~ surface of the partition
            boundary_nodes = max(1.0, my_rows ** (2.0 / 3.0)) * 4.0
            halo_bytes = boundary_nodes * FP64_BYTES
            left, right = (rank - 1) % size, (rank + 1) % size

            def halo():
                if size == 1:
                    return
                r1 = yield Irecv(src=left, tag=0)
                r2 = yield Irecv(src=right, tag=1)
                yield Isend(dst=right, tag=0, size_bytes=halo_bytes)
                yield Isend(dst=left, tag=1, size_bytes=halo_bytes)
                yield WaitAll([r1, r2])

            for _ in range(steps):
                # serial mesh-colouring/reordering pass before assembly
                yield Compute("ffb-axpy", iters=0.05 * my_rows, serial=True)
                # 8 element-node pairs per hexahedral element
                yield Compute("ffb-assembly", iters=my_elems * 8,
                              imbalance=1.15)
                for _ in range(cg_iters):
                    yield from halo()
                    yield Compute("ffb-spmv", iters=my_rows * nnz)
                    yield Compute("ffb-dot", iters=my_rows)
                    yield Allreduce(size_bytes=8)
                    yield Compute("ffb-axpy", iters=3 * my_rows)
                    yield Compute("ffb-dot", iters=my_rows)
                    yield Allreduce(size_bytes=8)

        return program
