"""FFB-MINI (FrontFlow/blue): unstructured FEM large-eddy simulation.

Finite-element incompressible flow on unstructured meshes: element-matrix
assembly with indirect scatter-adds and a CG pressure solve over an
unstructured sparse matrix.  :mod:`physics` implements the P1 FEM
machinery and CG (validated against analytic solutions and SciPy);
:mod:`skeleton` carries the gather/scatter-heavy cost signature that makes
FFB sensitive to the A64FX's 256-byte cache lines.
"""

from repro.miniapps.ffb.skeleton import Ffb

__all__ = ["Ffb"]
