"""Performance skeleton of NICAM-DC-mini.

NICAM splits the icosahedron into 10 x 4^rlevel regions of
``(2^glevel)^2``-ish columns; regions are distributed over ranks, each
column carrying ``levels`` vertical layers of ~6 prognostic fields.  Per
large timestep:

* 2 RK substeps x a fat horizontal stencil over all fields and levels
  (the dycore kernel: ~260 FLOPs per cell-level);
* a vertical-implicit tridiagonal pass (low ILP, recurrence-limited);
* region-edge halo exchanges and one diagnostic ``Allreduce``.

NICAM is strongly memory-bound with mid-size working sets — the second
pillar (after FFVC) of A64FX's bandwidth advantage in the comparison.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.kernels.kernel import LoopKernel
from repro.miniapps import decomp
from repro.miniapps.base import Dataset, MiniApp
from repro.runtime.program import Allreduce, Compute, Irecv, Isend, WaitAll
from repro.units import FP64_BYTES

#: Prognostic + diagnostic fields carried by the dycore stencils.
FIELDS = 6


class NicamDc(MiniApp):
    name = "nicam-dc"
    full_name = "NICAM-DC-MINI"
    description = ("Non-hydrostatic icosahedral atmospheric dynamical core; "
                   "many-field stencils over vertical columns")
    character = "memory"

    def make_datasets(self) -> list[Dataset]:
        return [
            Dataset("as-is", "gl05rl00-like: 10 regions of 32x32 columns, "
                             "40 levels, 11 steps",
                    {"regions": 10, "region_size": 32, "levels": 40,
                     "steps": 11}),
            Dataset("large", "gl07rl01-like: 40 regions of 64x64 columns, "
                             "94 levels, 22 steps",
                    {"regions": 40, "region_size": 64, "levels": 94,
                     "steps": 22}),
        ]

    # ------------------------------------------------------------------
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        rsize = dataset["region_size"]
        levels = dataset["levels"]
        # A stencil row of all fields and levels for neighbour reuse.
        row_ws = rsize * levels * FIELDS * FP64_BYTES * 3
        dycore = LoopKernel(
            name="nicam-dycore",
            flops=260.0,                       # per cell-level, all fields
            fma_fraction=0.75,
            bytes_load=2.2 * FIELDS * FP64_BYTES,
            bytes_store=FIELDS * FP64_BYTES,
            working_set_bytes=float(row_ws),
            streaming_fraction=0.55,
            vec_fraction=0.92,
            ilp=7.0,
            contiguous_fraction=0.92,
        )
        vertical = LoopKernel(
            name="nicam-vertical",
            flops=24.0,                        # tridiagonal forward/back per level
            fma_fraction=0.6,
            bytes_load=4 * FP64_BYTES,
            bytes_store=2 * FP64_BYTES,
            working_set_bytes=float(levels * 4 * FP64_BYTES),
            streaming_fraction=0.5,
            vec_fraction=0.5,                  # recurrence along the column
            ilp=2.0,
            contiguous_fraction=1.0,
        )
        return {"nicam-dycore": dycore, "nicam-vertical": vertical}

    # ------------------------------------------------------------------
    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     b) -> None:
        """Closed form of ``make_program`` (checked against replay)."""
        regions = dataset["regions"]
        rsize = dataset["region_size"]
        levels = dataset["levels"]
        steps = dataset["steps"]
        total_cells = regions * rsize * rsize * levels
        edge_bytes = rsize * levels * FIELDS * FP64_BYTES

        cells = decomp.split_1d(total_cells, n_ranks, rank)
        slices = max(1, round(regions / n_ranks))
        b.compute("nicam-vertical", 0.01 * cells * steps, regions=steps,
                  serial=True)
        b.compute("nicam-dycore", cells * 2 * steps, regions=2 * steps,
                  imbalance=1.05)
        b.compute("nicam-vertical", cells * steps, regions=steps)
        b.collective("allreduce", 8 * FIELDS, count=steps)
        if n_ranks > 1:
            left, right = (rank - 1) % n_ranks, (rank + 1) % n_ranks
            nbytes = edge_bytes * slices
            b.exchange(rank, [(right, nbytes), (left, nbytes)],
                       count=2 * steps)

    # ------------------------------------------------------------------
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        regions = dataset["regions"]
        rsize = dataset["region_size"]
        levels = dataset["levels"]
        steps = dataset["steps"]
        total_cells = regions * rsize * rsize * levels
        edge_bytes = rsize * levels * FIELDS * FP64_BYTES

        def program(rank: int, size: int) -> Iterator:
            # Regions (or region halves, when ranks outnumber regions) are
            # dealt over ranks; each rank's boundary exchange is modeled as
            # the two adjacent ranks in the region ring moving one region
            # edge's worth of fields per owned region slice.
            cells = decomp.split_1d(total_cells, size, rank)
            slices = max(1, round(regions / size))
            left, right = (rank - 1) % size, (rank + 1) % size
            for _ in range(steps):
                # serial region-edge/pole fix-ups (~1% of cells)
                yield Compute("nicam-vertical", iters=0.01 * cells,
                              serial=True)
                for _rk in range(2):           # RK2 substeps
                    if size > 1:
                        r1 = yield Irecv(src=left, tag=0)
                        r2 = yield Irecv(src=right, tag=1)
                        yield Isend(dst=right, tag=0,
                                    size_bytes=edge_bytes * slices)
                        yield Isend(dst=left, tag=1,
                                    size_bytes=edge_bytes * slices)
                        yield WaitAll([r1, r2])
                    yield Compute("nicam-dycore", iters=cells,
                                  imbalance=1.05)
                yield Compute("nicam-vertical", iters=cells)
                yield Allreduce(size_bytes=8 * FIELDS)

        return program
