"""Vertical-column implicit solver (executable).

NICAM's non-hydrostatic core treats vertical sound waves and diffusion
implicitly: every column solves a tridiagonal system per step (the
skeleton's low-ILP ``nicam-vertical`` kernel).  This module implements the
column physics:

* :func:`thomas_solve` — the Thomas algorithm, vectorized over a batch of
  columns (validated against ``scipy.linalg.solve_banded``);
* :func:`implicit_diffusion_step` — backward-Euler vertical diffusion of a
  3D field, unconditionally stable (validated for conservation, stability
  at large dt, and convergence to the column mean).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def thomas_solve(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
                 rhs: np.ndarray) -> np.ndarray:
    """Solve batched tridiagonal systems by the Thomas algorithm.

    All inputs have shape ``(..., n)``; ``lower[..., 0]`` and
    ``upper[..., -1]`` are ignored.  The systems must be diagonally
    dominant (NICAM's implicit operators are); no pivoting is performed.
    """
    if diag.shape[-1] < 2:
        raise ConfigurationError("tridiagonal systems need n >= 2")
    if not (lower.shape == diag.shape == upper.shape == rhs.shape):
        raise ConfigurationError("band shapes disagree")
    n = diag.shape[-1]
    c_prime = np.empty_like(diag)
    d_prime = np.empty_like(rhs)
    c_prime[..., 0] = upper[..., 0] / diag[..., 0]
    d_prime[..., 0] = rhs[..., 0] / diag[..., 0]
    for k in range(1, n):
        denom = diag[..., k] - lower[..., k] * c_prime[..., k - 1]
        if np.any(np.abs(denom) < 1e-300):
            raise ConfigurationError("singular pivot in Thomas sweep")
        c_prime[..., k] = upper[..., k] / denom
        d_prime[..., k] = (rhs[..., k]
                           - lower[..., k] * d_prime[..., k - 1]) / denom
    x = np.empty_like(rhs)
    x[..., -1] = d_prime[..., -1]
    for k in range(n - 2, -1, -1):
        x[..., k] = d_prime[..., k] - c_prime[..., k] * x[..., k + 1]
    return x


def implicit_diffusion_step(field: np.ndarray, dt: float, dz: float,
                            kappa: float) -> np.ndarray:
    """Backward-Euler vertical diffusion: ``(I - dt K d2/dz2) f' = f``.

    ``field`` has shape ``(..., levels)`` (the last axis is the column);
    Neumann (no-flux) boundaries top and bottom, so the column integral is
    conserved exactly.
    """
    if dt <= 0 or dz <= 0 or kappa < 0:
        raise ConfigurationError("bad diffusion parameters")
    n = field.shape[-1]
    if n < 2:
        raise ConfigurationError("need at least 2 levels")
    r = kappa * dt / (dz * dz)
    shape = field.shape
    lower = np.full(shape, -r)
    upper = np.full(shape, -r)
    diag = np.full(shape, 1.0 + 2.0 * r)
    # no-flux boundaries: the ghost value mirrors the boundary cell
    diag[..., 0] = 1.0 + r
    diag[..., -1] = 1.0 + r
    lower[..., 0] = 0.0
    upper[..., -1] = 0.0
    return thomas_solve(lower, diag, upper, field)
