"""Flux-form shallow-water dynamical core (executable).

A structurally faithful miniature of a NICAM region's horizontal dynamics:
conservative flux-form updates on a logically rectangular (periodic) grid
with RK2 time stepping and fourth-order numerical diffusion — the same
"wide stencil over many prognostic fields" pattern the real dycore has.

Prognostic fields: fluid depth ``h`` and momenta ``hu``, ``hv``.

Invariants checked by the tests:

* exact mass conservation (flux-form guarantees it to round-off),
* a state of rest stays at rest,
* bounded total energy over short integrations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

GRAVITY = 9.80665


@dataclass
class SwState:
    """Shallow-water prognostic state on a periodic grid of spacing h."""

    depth: np.ndarray
    mom_x: np.ndarray
    mom_y: np.ndarray
    dx: float

    def __post_init__(self) -> None:
        if self.depth.ndim != 2:
            raise ConfigurationError("fields must be 2D")
        if not (self.depth.shape == self.mom_x.shape == self.mom_y.shape):
            raise ConfigurationError("field shapes disagree")
        if self.dx <= 0:
            raise ConfigurationError("grid spacing must be positive")
        if np.any(self.depth <= 0):
            raise ConfigurationError("depth must stay positive")

    def mass(self) -> float:
        return float(self.depth.sum()) * self.dx * self.dx

    def energy(self) -> float:
        """Total energy (kinetic + potential)."""
        ke = 0.5 * (self.mom_x ** 2 + self.mom_y ** 2) / self.depth
        pe = 0.5 * GRAVITY * self.depth ** 2
        return float((ke + pe).sum()) * self.dx * self.dx


def _ddx(f: np.ndarray, dx: float) -> np.ndarray:
    return (np.roll(f, -1, 0) - np.roll(f, 1, 0)) / (2.0 * dx)


def _ddy(f: np.ndarray, dx: float) -> np.ndarray:
    return (np.roll(f, -1, 1) - np.roll(f, 1, 1)) / (2.0 * dx)


def _hyperdiff(f: np.ndarray, coeff: float, dx: float) -> np.ndarray:
    """Fourth-order diffusion ``-coeff * lap(lap(f))`` (stabilizer)."""
    def lap(g: np.ndarray) -> np.ndarray:
        return (
            np.roll(g, 1, 0) + np.roll(g, -1, 0)
            + np.roll(g, 1, 1) + np.roll(g, -1, 1) - 4.0 * g
        ) / (dx * dx)

    return -coeff * lap(lap(f))


def tendencies(state: SwState, diff_coeff: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Right-hand sides of the flux-form shallow-water equations."""
    h, mx, my, dx = state.depth, state.mom_x, state.mom_y, state.dx
    u, v = mx / h, my / h
    dh = -(_ddx(mx, dx) + _ddy(my, dx)) + _hyperdiff(h, diff_coeff, dx)
    press = 0.5 * GRAVITY * h * h
    dmx = -(_ddx(mx * u + press, dx) + _ddy(mx * v, dx)) + _hyperdiff(mx, diff_coeff, dx)
    dmy = -(_ddx(my * u, dx) + _ddy(my * v + press, dx)) + _hyperdiff(my, diff_coeff, dx)
    return dh, dmx, dmy


def step_rk2(state: SwState, dt: float, diff_coeff: float = 0.0) -> SwState:
    """One Heun (RK2) step."""
    if dt <= 0:
        raise ConfigurationError("dt must be positive")
    d1 = tendencies(state, diff_coeff)
    mid = SwState(
        depth=state.depth + dt * d1[0],
        mom_x=state.mom_x + dt * d1[1],
        mom_y=state.mom_y + dt * d1[2],
        dx=state.dx,
    )
    d2 = tendencies(mid, diff_coeff)
    return SwState(
        depth=state.depth + 0.5 * dt * (d1[0] + d2[0]),
        mom_x=state.mom_x + 0.5 * dt * (d1[1] + d2[1]),
        mom_y=state.mom_y + 0.5 * dt * (d1[2] + d2[2]),
        dx=state.dx,
    )


def gaussian_hill(n: int, dx: float, h0: float = 10.0,
                  bump: float = 0.1) -> SwState:
    """Initial condition: fluid at rest with a Gaussian height anomaly."""
    if n < 4:
        raise ConfigurationError("grid too small")
    x = (np.arange(n) - n / 2) * dx
    X, Y = np.meshgrid(x, x, indexing="ij")
    L = n * dx
    h = h0 + bump * np.exp(-(X ** 2 + Y ** 2) / (L / 10) ** 2)
    zero = np.zeros_like(h)
    return SwState(depth=h, mom_x=zero.copy(), mom_y=zero.copy(), dx=dx)
