"""NICAM-DC-MINI: non-hydrostatic icosahedral atmospheric dynamical core.

The miniapp runs the dynamical-core stepping of NICAM on an icosahedral
grid split into regions.  :mod:`physics` implements a shallow-water
dynamical core (the same flux-form stencil structure, fewer prognostic
fields); :mod:`skeleton` models the real app's many-field vertical-column
stencils and region-edge halo exchanges.
"""

from repro.miniapps.nicam.skeleton import NicamDc

__all__ = ["NicamDc"]
