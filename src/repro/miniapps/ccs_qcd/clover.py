"""Clover improvement and even-odd preconditioning (executable).

The real CCS-QCD benchmark solves the *clover-improved* Wilson operator
with *even-odd (red-black) preconditioning*; this module adds both on top
of :mod:`repro.miniapps.ccs_qcd.physics`:

* :func:`field_strength` — the clover-leaf (four-plaquette) discretization
  of the gauge field strength ``F_munu``;
* :func:`clover_term` — the site-local term
  ``A(x) = 1 - (c_sw kappa / 2) sum_{mu<nu} sigma_munu x F_munu(x)``
  as a batch of Hermitian 12x12 matrices;
* :func:`wilson_clover_dirac` — ``D = A - kappa H``;
* :func:`solve_eo_preconditioned` — the Schur-complement solve on odd
  sites with even-site back-substitution, exactly the benchmark's solver
  structure.

Validated invariants (see the test suite): ``A`` is Hermitian and reduces
to the identity on a unit gauge field; the full operator keeps
gamma5-hermiticity; the even-odd solve agrees with the unpreconditioned
solve to solver tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.miniapps.ccs_qcd import physics
from repro.miniapps.ccs_qcd.physics import GAMMA, _shift

#: sigma_munu = (i/2) [gamma_mu, gamma_nu] — Hermitian for Hermitian gammas.
SIGMA = np.zeros((4, 4, 4, 4), dtype=np.complex128)
for _mu in range(4):
    for _nu in range(4):
        SIGMA[_mu, _nu] = 0.5j * (GAMMA[_mu] @ GAMMA[_nu]
                                  - GAMMA[_nu] @ GAMMA[_mu])


def _plaquette_leaves(gauge: np.ndarray, mu: int, nu: int) -> np.ndarray:
    """Sum of the four clover-leaf plaquettes in the (mu, nu) plane.

    Returns ``Q_munu(x)`` with shape ``(*lattice, 3, 3)``.
    """
    u_mu, u_nu = gauge[mu], gauge[nu]

    def mm(a, b):
        return np.einsum("...ab,...bc->...ac", a, b)

    def dag(a):
        return np.conj(np.swapaxes(a, -1, -2))

    u_nu_pmu = _shift(u_nu, mu, +1)     # U_nu(x + mu)
    u_mu_pnu = _shift(u_mu, nu, +1)     # U_mu(x + nu)
    # leaf 1: x -> x+mu -> x+mu+nu -> x+nu -> x
    p1 = mm(mm(u_mu, u_nu_pmu), mm(dag(u_mu_pnu), dag(u_nu)))
    # leaf 2: x -> x+nu -> x+nu-mu -> x-mu -> x
    u_mu_m = _shift(u_mu, mu, -1)                       # U_mu(x - mu)
    u_nu_mmu = _shift(u_nu, mu, -1)                     # U_nu(x - mu)
    u_mu_m_pnu = _shift(u_mu_m, nu, +1)                 # U_mu(x - mu + nu)
    p2 = mm(mm(u_nu, dag(u_mu_m_pnu)), mm(dag(u_nu_mmu), u_mu_m))
    # leaf 3: x -> x-mu -> x-mu-nu -> x-nu -> x
    u_nu_m = _shift(u_nu, nu, -1)                       # U_nu(x - nu)
    u_mu_mm = _shift(u_mu_m, nu, -1)                    # U_mu(x - mu - nu)
    u_nu_mmu_mnu = _shift(_shift(u_nu, mu, -1), nu, -1)  # U_nu(x - mu - nu)
    p3 = mm(mm(dag(u_mu_m), dag(u_nu_mmu_mnu)), mm(u_mu_mm, u_nu_m))
    # leaf 4: x -> x-nu -> x-nu+mu -> x+mu -> x
    u_mu_mnu = _shift(u_mu, nu, -1)                     # U_mu(x - nu)
    u_nu_mnu_pmu = _shift(u_nu_m, mu, +1)               # U_nu(x + mu - nu)
    p4 = mm(mm(dag(u_nu_m), u_mu_mnu), mm(u_nu_mnu_pmu, dag(u_mu)))
    return p1 + p2 + p3 + p4


def field_strength(gauge: np.ndarray, mu: int, nu: int) -> np.ndarray:
    """Hermitian traceless clover-leaf ``F_munu(x)``, shape (*lat, 3, 3)."""
    if not (0 <= mu < 4 and 0 <= nu < 4 and mu != nu):
        raise ConfigurationError("need distinct directions mu, nu in 0..3")
    q = _plaquette_leaves(gauge, mu, nu)
    f = (q - np.conj(np.swapaxes(q, -1, -2))) / 8.0j
    # remove the trace part (SU(3) field strength is traceless)
    tr = np.einsum("...aa->...", f) / 3.0
    return f - tr[..., None, None] * np.eye(3)


def clover_term(gauge: np.ndarray, kappa: float,
                c_sw: float = 1.0) -> np.ndarray:
    """Site-local clover matrices ``A(x)``, shape ``(*lattice, 12, 12)``.

    Spin-color index ordering is ``s * 3 + c`` (spin-major).
    """
    if c_sw < 0:
        raise ConfigurationError("c_sw must be non-negative")
    lat = gauge.shape[1:5]
    a = np.zeros((*lat, 12, 12), dtype=np.complex128)
    eye12 = np.eye(12)
    a += eye12
    coeff = -0.5 * c_sw * kappa
    for mu in range(4):
        for nu in range(mu + 1, 4):
            f = field_strength(gauge, mu, nu)
            # sigma (4x4, spin) kron F (3x3, color); factor 2 for the
            # (nu, mu) partner term (sigma and F are both antisymmetric
            # under mu <-> nu, so the products are equal)
            block = np.einsum("st,...ab->...satb", SIGMA[mu, nu], f)
            a += 2.0 * coeff * block.reshape(*lat, 12, 12)
    return a


def apply_clover(a: np.ndarray, psi: np.ndarray) -> np.ndarray:
    """Apply the site-local clover matrices to a spinor field."""
    lat = psi.shape[:4]
    flat = psi.reshape(*lat, 12)
    out = np.einsum("...ij,...j->...i", a, flat)
    return out.reshape(*lat, 4, 3)


def wilson_clover_dirac(psi: np.ndarray, gauge: np.ndarray, kappa: float,
                        a_clover: np.ndarray) -> np.ndarray:
    """``D psi = A psi - kappa H psi`` (clover-improved Wilson)."""
    hopping = psi - physics.wilson_dirac(psi, gauge, kappa)   # = kappa*H psi
    return apply_clover(a_clover, psi) - hopping


# ----------------------------------------------------------------------
# even-odd preconditioning
# ----------------------------------------------------------------------
def parity_masks(lat: tuple[int, int, int, int]) -> tuple[np.ndarray, np.ndarray]:
    """(even, odd) site masks of shape ``lat``."""
    t, z, y, x = np.ix_(*[np.arange(n) for n in lat])
    even = ((t + z + y + x) % 2) == 0
    return even, ~even


def _project(psi: np.ndarray, mask: np.ndarray) -> np.ndarray:
    out = np.zeros_like(psi)
    out[mask] = psi[mask]
    return out


def solve_eo_preconditioned(
    gauge: np.ndarray,
    b: np.ndarray,
    kappa: float,
    c_sw: float = 1.0,
    tol: float = 1e-10,
    max_iter: int = 500,
) -> tuple[np.ndarray, int, float]:
    """Solve ``D x = b`` for the clover operator via the odd-site Schur
    complement; returns (x, Schur-solver iterations, true relative residual).
    """
    lat = b.shape[:4]
    even, odd = parity_masks(lat)
    a_clover = clover_term(gauge, kappa, c_sw)
    a_inv = np.linalg.inv(a_clover)

    def hop(psi):
        """kappa * H psi (pure hopping part)."""
        return psi - physics.wilson_dirac(psi, gauge, kappa)

    def apply_ainv(psi):
        return apply_clover(a_inv, psi)

    def schur(x_odd):
        """(A_oo - kappa^2 H_oe A_ee^{-1} H_eo) restricted to odd sites."""
        x_odd = _project(x_odd, odd)
        h_eo = _project(hop(x_odd), even)
        back = _project(hop(apply_ainv(h_eo)), odd)
        return _project(apply_clover(a_clover, x_odd), odd) - back

    # right-hand side: b_o + kappa H_oe A_ee^{-1} b_e  (note: D_oe = -k H_oe)
    b_e = _project(b, even)
    b_o = _project(b, odd)
    rhs = b_o + _project(hop(apply_ainv(b_e)), odd)

    # BiCGStab on the Schur system
    x = np.zeros_like(b)
    r = rhs - schur(x)
    r0 = r.copy()
    rho = alpha = omega = 1.0 + 0.0j
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    rhs_norm = float(np.linalg.norm(rhs)) or 1.0
    iters = 0
    for iters in range(1, max_iter + 1):
        rho_new = complex(np.vdot(r0, r))
        if rho_new == 0:
            break
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        v = schur(p)
        alpha = rho / complex(np.vdot(r0, v))
        s = r - alpha * v
        if np.linalg.norm(s) / rhs_norm < tol:
            x = x + alpha * p
            break
        t = schur(s)
        omega = complex(np.vdot(t, s)) / complex(np.vdot(t, t))
        x = x + alpha * p + omega * s
        r = s - omega * t
        if np.linalg.norm(r) / rhs_norm < tol:
            break

    x_odd = _project(x, odd)
    # back-substitute the even sites: x_e = A_ee^{-1} (b_e + kappa H_eo x_o)
    x_even = _project(apply_ainv(b_e + _project(hop(x_odd), even)), even)
    x_full = x_odd + x_even
    true_res = float(
        np.linalg.norm(wilson_clover_dirac(x_full, gauge, kappa, a_clover) - b)
        / (np.linalg.norm(b) or 1.0)
    )
    return x_full, iters, true_res
