"""Wilson-fermion lattice operator and BiCGStab solver (executable).

A faithful (if clover-less) miniature of the CCS-QCD benchmark kernel:

* 4D periodic lattice, spinor fields ``psi[t, z, y, x, spin(4), color(3)]``;
* SU(3) gauge links ``U[mu, t, z, y, x, 3, 3]`` (random but exactly
  unitary, built by QR);
* the Wilson-Dirac operator with the standard spin projectors
  ``(1 -+ gamma_mu)``;
* BiCGStab with true-residual verification.

The tests check gamma-algebra identities, gamma5-hermiticity of the
operator, and solver convergence — the same invariants the real benchmark's
verification stage checks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Dirac gamma matrices (Dirac basis), shape (4, 4, 4): gamma[mu].
GAMMA = np.zeros((4, 4, 4), dtype=np.complex128)
# gamma_1 (x)
GAMMA[0] = [[0, 0, 0, 1j], [0, 0, 1j, 0], [0, -1j, 0, 0], [-1j, 0, 0, 0]]
# gamma_2 (y)
GAMMA[1] = [[0, 0, 0, 1], [0, 0, -1, 0], [0, -1, 0, 0], [1, 0, 0, 0]]
# gamma_3 (z)
GAMMA[2] = [[0, 0, 1j, 0], [0, 0, 0, -1j], [-1j, 0, 0, 0], [0, 1j, 0, 0]]
# gamma_4 (t)
GAMMA[3] = [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, -1, 0], [0, 0, 0, -1]]

# Euclidean gamma5 = gamma_1 gamma_2 gamma_3 gamma_4: Hermitian, squares to
# the identity, anticommutes with every gamma_mu.
GAMMA5 = np.ascontiguousarray(GAMMA[0] @ GAMMA[1] @ GAMMA[2] @ GAMMA[3])

#: Axis of the field array each direction mu shifts (mu: x,y,z,t).
_MU_AXIS = {0: 3, 1: 2, 2: 1, 3: 0}


def random_su3_field(shape: tuple[int, int, int, int],
                     rng: np.random.Generator) -> np.ndarray:
    """Random unitary gauge field ``U[mu, t, z, y, x, 3, 3]``."""
    t, z, y, x = shape
    raw = rng.standard_normal((4, t, z, y, x, 3, 3)) \
        + 1j * rng.standard_normal((4, t, z, y, x, 3, 3))
    q, r = np.linalg.qr(raw)
    # fix the phase so the decomposition is unique and exactly unitary
    d = np.einsum("...ii->...i", r)
    q = q * (d / np.abs(d))[..., None, :]
    return q


def random_spinor(shape: tuple[int, int, int, int],
                  rng: np.random.Generator) -> np.ndarray:
    t, z, y, x = shape
    return (rng.standard_normal((t, z, y, x, 4, 3))
            + 1j * rng.standard_normal((t, z, y, x, 4, 3)))


def _shift(field: np.ndarray, mu: int, sign: int) -> np.ndarray:
    """Periodic shift of a site field along direction mu (+1 = forward)."""
    return np.roll(field, -sign, axis=_MU_AXIS[mu])


def wilson_dirac(psi: np.ndarray, gauge: np.ndarray, kappa: float) -> np.ndarray:
    """Apply the Wilson-Dirac operator ``D = 1 - kappa * H`` to ``psi``."""
    if psi.ndim != 6 or psi.shape[-2:] != (4, 3):
        raise ConfigurationError(f"bad spinor shape {psi.shape}")
    if gauge.shape != (4, *psi.shape[:4], 3, 3):
        raise ConfigurationError(f"bad gauge shape {gauge.shape}")
    if not 0.0 < kappa < 0.25:
        raise ConfigurationError("kappa must be in (0, 0.25) for stability")

    hop = np.zeros_like(psi)
    ident = np.eye(4)
    for mu in range(4):
        u = gauge[mu]
        # forward: (1 - gamma_mu) U_mu(x) psi(x + mu)
        fwd = _shift(psi, mu, +1)
        fwd = np.einsum("...ab,...sb->...sa", u, fwd)
        hop += np.einsum("st,...tc->...sc", ident - GAMMA[mu], fwd)
        # backward: (1 + gamma_mu) U_mu(x - mu)^dagger psi(x - mu)
        u_back = _shift(u, mu, -1)
        bwd = _shift(psi, mu, -1)
        bwd = np.einsum("...ba,...sb->...sa", np.conj(u_back), bwd)
        hop += np.einsum("st,...tc->...sc", ident + GAMMA[mu], bwd)
    return psi - kappa * hop


def apply_gamma5(psi: np.ndarray) -> np.ndarray:
    return np.einsum("st,...tc->...sc", GAMMA5, psi)


def _dot(a: np.ndarray, b: np.ndarray) -> complex:
    return complex(np.vdot(a, b))


def bicgstab(
    gauge: np.ndarray,
    b: np.ndarray,
    kappa: float,
    tol: float = 1e-10,
    max_iter: int = 500,
) -> tuple[np.ndarray, int, float]:
    """Solve ``D x = b``; returns (x, iterations, relative residual).

    Standard (unpreconditioned) BiCGStab, matching the miniapp's solver.
    """
    x = np.zeros_like(b)
    r = b - wilson_dirac(x, gauge, kappa)
    r0 = r.copy()
    rho = alpha = omega = 1.0 + 0.0j
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return x, 0, 0.0

    for it in range(1, max_iter + 1):
        rho_new = _dot(r0, r)
        if rho_new == 0:
            break
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        v = wilson_dirac(p, gauge, kappa)
        alpha = rho / _dot(r0, v)
        s = r - alpha * v
        if np.linalg.norm(s) / b_norm < tol:
            x = x + alpha * p
            return x, it, float(np.linalg.norm(s)) / b_norm
        t = wilson_dirac(s, gauge, kappa)
        omega = _dot(t, s) / _dot(t, t)
        x = x + alpha * p + omega * s
        r = s - omega * t
        rel = float(np.linalg.norm(r)) / b_norm
        if rel < tol:
            return x, it, rel
    return x, max_iter, float(np.linalg.norm(r)) / b_norm


def bicgstab_mixed(
    gauge: np.ndarray,
    b: np.ndarray,
    kappa: float,
    tol: float = 1e-10,
    inner_tol: float = 1e-5,
    max_outer: int = 20,
    max_inner: int = 200,
) -> tuple[np.ndarray, int, int, float]:
    """Mixed-precision solve: fp32 inner BiCGStab + fp64 iterative
    refinement (the production lattice-QCD strategy — most FLOPs run at
    twice the SIMD width).

    Returns (x, outer iterations, total inner iterations, relative
    residual, all measured in fp64).
    """
    if not 0.0 < inner_tol < 1.0:
        raise ConfigurationError("inner_tol must be in (0, 1)")
    gauge32 = gauge.astype(np.complex64)
    x = np.zeros_like(b)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return x, 0, 0, 0.0

    total_inner = 0
    rel = 1.0
    for outer in range(1, max_outer + 1):
        r = b - wilson_dirac(x, gauge, kappa)          # fp64 residual
        rel = float(np.linalg.norm(r)) / b_norm
        if rel < tol:
            return x, outer - 1, total_inner, rel
        # fp32 correction solve: D delta = r
        delta32, inner, _ = _bicgstab32(gauge32, r.astype(np.complex64),
                                        kappa, inner_tol, max_inner)
        total_inner += inner
        x = x + delta32.astype(np.complex128)
    r = b - wilson_dirac(x, gauge, kappa)
    return x, max_outer, total_inner, float(np.linalg.norm(r)) / b_norm


def _bicgstab32(gauge32: np.ndarray, b32: np.ndarray, kappa: float,
                tol: float, max_iter: int) -> tuple[np.ndarray, int, float]:
    """Single-precision BiCGStab (helper for the mixed solver)."""
    x = np.zeros_like(b32)
    r = b32 - wilson_dirac(x, gauge32, kappa).astype(np.complex64)
    r0 = r.copy()
    rho = alpha = omega = np.complex64(1.0)
    v = np.zeros_like(b32)
    p = np.zeros_like(b32)
    b_norm = float(np.linalg.norm(b32)) or 1.0
    for it in range(1, max_iter + 1):
        rho_new = complex(np.vdot(r0, r))
        if rho_new == 0:
            break
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + np.complex64(beta) * (p - np.complex64(omega) * v)
        v = wilson_dirac(p, gauge32, kappa).astype(np.complex64)
        alpha = rho / complex(np.vdot(r0, v))
        s = r - np.complex64(alpha) * v
        if np.linalg.norm(s) / b_norm < tol:
            return x + np.complex64(alpha) * p, it, \
                float(np.linalg.norm(s)) / b_norm
        t = wilson_dirac(s, gauge32, kappa).astype(np.complex64)
        omega = complex(np.vdot(t, s)) / complex(np.vdot(t, t))
        x = x + np.complex64(alpha) * p + np.complex64(omega) * s
        r = s - np.complex64(omega) * t
        if np.linalg.norm(r) / b_norm < tol:
            return x, it, float(np.linalg.norm(r)) / b_norm
    return x, max_iter, float(np.linalg.norm(r)) / b_norm


def flops_per_site_dirac() -> float:
    """FLOPs per lattice site of one Wilson-Dirac application.

    The textbook count for the full 8-direction hopping term with SU(3)
    multiplies and spin projection is 1320 fp64 FLOPs/site; the identity
    part adds 24.
    """
    return 1344.0
