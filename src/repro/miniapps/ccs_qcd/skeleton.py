"""Performance skeleton of CCS-QCD.

Cost signature per BiCGStab iteration (matching :mod:`physics` exactly):

* 2 Wilson-Dirac applications (the hopping kernel, 1344 FLOPs/site);
* 6 AXPY-class vector updates over the spinor field (192 B/site each);
* 4 global inner products -> 4 ``Allreduce(16 B)``;
* one halo exchange per Dirac application: the rank grid decomposes the
  t and z dimensions, each face moving ``surface x 24 complex`` spinors.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import ConfigurationError
from repro.kernels.kernel import LoopKernel
from repro.miniapps import decomp
from repro.miniapps.base import Dataset, MiniApp
from repro.miniapps.ccs_qcd.physics import flops_per_site_dirac
from repro.runtime.program import Allreduce, Compute, Irecv, Isend, WaitAll
from repro.units import FP64_BYTES

#: bytes of one spinor site (4 spin x 3 color x complex128)
SPINOR_BYTES = 4 * 3 * 2 * FP64_BYTES          # 192
#: bytes of one gauge link matrix (3x3 complex128)
LINK_BYTES = 9 * 2 * FP64_BYTES                 # 144


class CcsQcd(MiniApp):
    name = "ccs-qcd"
    full_name = "CCS QCD Solver Benchmark"
    description = ("Lattice QCD: Wilson-fermion BiCGStab solver; "
                   "SU(3) matrix-spinor products dominate")
    character = "mixed"

    def make_datasets(self) -> list[Dataset]:
        return [
            Dataset("as-is", "class 1: 8x8x8x32 lattice, 50 solver iterations",
                    {"lattice": (32, 8, 8, 8), "iters": 50, "kappa": 0.124}),
            Dataset("large", "class 2: 32x32x32x64 lattice, 100 iterations",
                    {"lattice": (64, 32, 32, 32), "iters": 100, "kappa": 0.124}),
        ]

    def weak_dataset(self, factor: int) -> Dataset:
        """Grow the large lattice's t-extent by ``factor``."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        lt, lz, ly, lx = self.dataset("large")["lattice"]
        ds = Dataset(
            f"weak-x{factor}",
            f"{lx}^3 x {lt * factor} lattice (weak-scaled x{factor})",
            {"lattice": (lt * factor, lz, ly, lx),
             "iters": self.dataset("large")["iters"],
             "kappa": self.dataset("large")["kappa"]},
        )
        self.register_dataset(ds)
        return ds

    # ------------------------------------------------------------------
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        lt, lz, ly, lx = dataset["lattice"]
        # per-site working set of the hopping loop: the 8 neighbour spinors
        # plus 8 links for a streamed xy-plane
        plane_sites = lx * ly
        ws = plane_sites * 3 * (SPINOR_BYTES + LINK_BYTES)
        dirac = LoopKernel(
            name="qcd-dirac",
            flops=flops_per_site_dirac(),
            fma_fraction=0.85,
            # streams: 8 links + ~2 effective spinor reads (neighbour reuse)
            # + 1 spinor write per site
            bytes_load=8 * LINK_BYTES + 2 * SPINOR_BYTES,
            bytes_store=SPINOR_BYTES,
            working_set_bytes=float(ws),
            streaming_fraction=0.55,
            vec_fraction=0.97,
            ilp=12.0,
            contiguous_fraction=0.9,
        )
        axpy = LoopKernel(
            name="qcd-axpy",
            flops=2.0 * 24,              # complex fma over 12 components
            fma_fraction=1.0,
            bytes_load=2 * SPINOR_BYTES,
            bytes_store=SPINOR_BYTES,
            streaming_fraction=1.0,
            vec_fraction=1.0,
            ilp=8.0,
        )
        dot = LoopKernel(
            name="qcd-dot",
            flops=2.0 * 24,
            fma_fraction=1.0,
            bytes_load=2 * SPINOR_BYTES,
            bytes_store=0.0,
            streaming_fraction=1.0,
            vec_fraction=1.0,
            ilp=4.0,                     # reduction chain
        )
        return {"qcd-dirac": dirac, "qcd-axpy": axpy, "qcd-dot": dot}

    # ------------------------------------------------------------------
    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     b) -> None:
        """Closed form of ``make_program`` (checked against replay)."""
        lt, lz, ly, lx = dataset["lattice"]
        iters = dataset["iters"]
        try:
            pt, pz = decomp.best_factor2(n_ranks, (lt, lz))
        except ConfigurationError:
            raise ConfigurationError(
                f"{self.name}: cannot decompose a {lt}x{lz} (t, z) plane "
                f"over {n_ranks} ranks"
            ) from None
        z_faces_bigger = (lt / pt) > (lz / pz)
        if z_faces_bigger:
            ct, cz = rank // pz, rank % pz
        else:
            ct, cz = rank % pt, rank // pt

        def rank_of(t: int, z: int) -> int:
            if z_faces_bigger:
                return (z % pz) + (t % pt) * pz
            return (t % pt) + (z % pz) * pt

        lt_loc = decomp.split_1d(lt, pt, ct)
        lz_loc = decomp.split_1d(lz, pz, cz)
        sites_local = lt_loc * lz_loc * ly * lx
        nbrs = []
        if pt > 1:
            nbrs.append((rank_of(ct - 1, cz), rank_of(ct + 1, cz),
                         lz_loc * ly * lx * SPINOR_BYTES))
        if pz > 1:
            nbrs.append((rank_of(ct, cz - 1), rank_of(ct, cz + 1),
                         lt_loc * ly * lx * SPINOR_BYTES))
        pack_sites = sum(n[2] for n in nbrs) / SPINOR_BYTES * 0.5
        boundary_fraction = min(
            0.9,
            (2.0 / lt_loc if pt > 1 else 0.0)
            + (2.0 / lz_loc if pz > 1 else 0.0),
        )
        interior = sites_local * (1.0 - boundary_fraction)
        boundary = sites_local - interior

        # serial bookkeeping + 2 pack passes per iteration (same group)
        serial_iters = 0.005 * sites_local * iters
        serial_regions = iters
        if pack_sites > 0:
            serial_iters += pack_sites * 2 * iters
            serial_regions += 2 * iters
        b.compute("qcd-axpy", serial_iters, regions=serial_regions,
                  serial=True)
        dirac_regions = 2 * iters * (2 if boundary > 0 else 1)
        b.compute("qcd-dirac", (interior + boundary) * 2 * iters,
                  regions=dirac_regions)
        b.compute("qcd-dot", sites_local * 4 * iters, regions=4 * iters)
        b.compute("qcd-axpy", 3 * sites_local * 2 * iters,
                  regions=2 * iters)
        b.collective("allreduce", 16, count=4 * iters)
        if nbrs:
            partners = []
            for lo, hi, nbytes in nbrs:
                partners += [(hi, nbytes), (lo, nbytes)]
            b.exchange(rank, partners, overlapped=True, count=2 * iters)

    # ------------------------------------------------------------------
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        lt, lz, ly, lx = dataset["lattice"]
        iters = dataset["iters"]
        try:
            pt, pz = decomp.best_factor2(n_ranks, (lt, lz))
        except ConfigurationError:
            raise ConfigurationError(
                f"{self.name}: cannot decompose a {lt}x{lz} (t, z) plane "
                f"over {n_ranks} ranks"
            ) from None

        # Rank ordering: let the dimension with the *larger* halo faces
        # vary fastest, so consecutive ranks (which block allocation packs
        # onto a node) exchange the big faces through shared memory — the
        # topology mapping production lattice codes apply.
        z_faces_bigger = (lt / pt) > (lz / pz)

        def coords(rank: int) -> tuple[int, int]:
            if z_faces_bigger:
                return rank // pz, rank % pz
            return rank % pt, rank // pt

        def rank_of(ct: int, cz: int) -> int:
            if z_faces_bigger:
                return (cz % pz) + (ct % pt) * pz
            return (ct % pt) + (cz % pz) * pt

        def program(rank: int, size: int) -> Iterator:
            ct, cz = coords(rank)
            lt_loc = decomp.split_1d(lt, pt, ct)
            lz_loc = decomp.split_1d(lz, pz, cz)
            sites_local = lt_loc * lz_loc * ly * lx
            halo_t = lz_loc * ly * lx * SPINOR_BYTES   # one t-face
            halo_z = lt_loc * ly * lx * SPINOR_BYTES   # one z-face
            nbrs = []
            if pt > 1:
                nbrs.append((rank_of(ct - 1, cz), rank_of(ct + 1, cz), halo_t))
            if pz > 1:
                nbrs.append((rank_of(ct, cz - 1), rank_of(ct, cz + 1), halo_z))

            # boundary sites whose spinors are packed into send buffers by
            # the master thread (the code's serial region)
            pack_sites = sum(n[2] for n in nbrs) / SPINOR_BYTES * 0.5

            # fraction of the local volume on a communicated face
            boundary_fraction = min(
                0.9,
                (2.0 / lt_loc if pt > 1 else 0.0)
                + (2.0 / lz_loc if pz > 1 else 0.0),
            )
            interior = sites_local * (1.0 - boundary_fraction)
            boundary = sites_local - interior

            def halo_begin():
                """Post the exchange; the Dirac interior overlaps it."""
                if pack_sites > 0:
                    yield Compute("qcd-axpy", iters=pack_sites, serial=True)
                reqs = []
                for tag, (lo, hi, nbytes) in enumerate(nbrs):
                    reqs.append((yield Irecv(src=lo, tag=2 * tag)))
                    reqs.append((yield Irecv(src=hi, tag=2 * tag + 1)))
                    yield Isend(dst=hi, tag=2 * tag, size_bytes=nbytes)
                    yield Isend(dst=lo, tag=2 * tag + 1, size_bytes=nbytes)
                return reqs

            def dirac_overlapped():
                """Communication-overlapped Dirac application (the real
                benchmark computes the interior while halos fly)."""
                reqs = yield from halo_begin()
                yield Compute("qcd-dirac", iters=interior)
                if reqs:
                    yield WaitAll(reqs)
                if boundary > 0:
                    yield Compute("qcd-dirac", iters=boundary)

            for _ in range(iters):
                # serial solver bookkeeping (scalar recurrences, boundary
                # fix-ups) — ~0.5% of the local sites, master thread only
                yield Compute("qcd-axpy", iters=0.005 * sites_local,
                              serial=True)
                # p-vector Dirac application (comm-overlapped)
                yield from dirac_overlapped()
                yield Compute("qcd-dot", iters=sites_local)
                yield Allreduce(size_bytes=16)
                yield Compute("qcd-axpy", iters=3 * sites_local)
                # s-vector Dirac application (comm-overlapped)
                yield from dirac_overlapped()
                for _ in range(3):
                    yield Compute("qcd-dot", iters=sites_local)
                    yield Allreduce(size_bytes=16)
                yield Compute("qcd-axpy", iters=3 * sites_local)

        return program
