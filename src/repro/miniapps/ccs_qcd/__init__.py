"""CCS QCD Solver Benchmark (lattice quantum chromodynamics).

The Fiber suite's CCS-QCD solves the Wilson-fermion linear system
``D x = b`` on a 4D space-time lattice with a BiCGStab solver; the hot loop
is the hopping term — SU(3) matrix times projected spinor per site and
direction.  :mod:`physics` implements the operator and solver for real
(NumPy) and :mod:`skeleton` carries its cost signature into the simulator.
"""

from repro.miniapps.ccs_qcd.skeleton import CcsQcd

__all__ = ["CcsQcd"]
