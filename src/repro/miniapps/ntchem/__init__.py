"""NTChem-MINI (NTChem/RI-MP2): molecular electronic-structure theory.

Computes the second-order Moller-Plesset correlation energy with the
resolution-of-identity approximation; the hot path is large DGEMMs
contracting three-index integrals — the suite's purest compute-bound,
cache-blocked workload.  :mod:`physics` implements RI-MP2 end to end
(validated against a direct four-index contraction); :mod:`skeleton`
models the pair-block DGEMM loop and the B-tensor all-to-all.
"""

from repro.miniapps.ntchem.skeleton import NtChem

__all__ = ["NtChem"]
