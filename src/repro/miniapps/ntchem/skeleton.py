"""Performance skeleton of NTChem-mini.

Phases:

* B-tensor redistribution: an ``Alltoall`` moving each rank's slice of
  ``B[naux, nocc, nvir]`` (the real code's MPI transpose);
* the pair loop: each rank owns ~``nocc^2 / 2 / size`` (i, j) pairs; each
  pair is one ``(nvir x naux)(naux x nvir)`` DGEMM plus an O(nvir^2)
  denominator/assembly pass;
* an energy ``Allreduce``.

NTChem is the compute-bound anchor of the cross-processor comparison:
A64FX's 3.38 TFLOP/s vs dual-Xeon's 3.07 make them near-equal once SIMD
is on, and SIMD-less builds are catastrophic everywhere.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.kernels.kernel import LoopKernel
from repro.kernels.presets import dgemm_blocked
from repro.miniapps import decomp
from repro.miniapps.base import Dataset, MiniApp
from repro.runtime.program import Allreduce, Alltoall, Compute
from repro.units import FP64_BYTES


class NtChem(MiniApp):
    name = "ntchem"
    full_name = "NTChem-MINI (RI-MP2)"
    description = ("Quantum chemistry: RI-MP2 correlation energy; "
                   "DGEMM-dominated, compute bound")
    character = "compute"

    def make_datasets(self) -> list[Dataset]:
        return [
            Dataset("as-is", "taxol/6-31G*-like: 62 occ, 343 vir, 1200 aux",
                    {"n_occ": 62, "n_vir": 343, "n_aux": 1200}),
            Dataset("large", "2x taxol: 124 occ, 686 vir, 2400 aux",
                    {"n_occ": 124, "n_vir": 686, "n_aux": 2400}),
        ]

    # ------------------------------------------------------------------
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        n_vir = dataset["n_vir"]
        gemm = dgemm_blocked(block=96)
        assemble = LoopKernel(
            name="ntchem-assemble",
            flops=7.0,                       # denominator + 2K - K^T + sum
            fma_fraction=0.6,
            bytes_load=3 * FP64_BYTES,
            bytes_store=FP64_BYTES / 4.0,
            working_set_bytes=float(n_vir * n_vir * FP64_BYTES),
            streaming_fraction=0.3,
            vec_fraction=0.95,
            ilp=8.0,
            contiguous_fraction=0.9,         # the K^T access is strided
        )
        return {"ntchem-gemm": gemm, "ntchem-assemble": assemble}

    # ------------------------------------------------------------------
    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     b) -> None:
        """Closed form of ``make_program`` (checked against replay)."""
        n_occ = dataset["n_occ"]
        n_vir = dataset["n_vir"]
        n_aux = dataset["n_aux"]
        n_pairs = n_occ * (n_occ + 1) // 2
        my_pairs = decomp.split_1d(n_pairs, n_ranks, rank)
        if n_ranks > 1:
            b_bytes = n_aux * n_occ * n_vir * FP64_BYTES
            b.collective("alltoall", b_bytes / n_ranks)
        b.compute("ntchem-gemm", my_pairs * n_vir * n_vir * n_aux,
                  schedule="dynamic", imbalance=1.1)
        b.compute("ntchem-assemble", my_pairs * n_vir * n_vir)
        b.compute("ntchem-assemble", my_pairs * n_vir / 2.0, serial=True)
        b.collective("allreduce", 8)

    # ------------------------------------------------------------------
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        n_occ = dataset["n_occ"]
        n_vir = dataset["n_vir"]
        n_aux = dataset["n_aux"]
        n_pairs = n_occ * (n_occ + 1) // 2
        b_bytes = n_aux * n_occ * n_vir * FP64_BYTES

        def program(rank: int, size: int) -> Iterator:
            my_pairs = decomp.split_1d(n_pairs, size, rank)
            if size > 1:
                # each rank exchanges its B slice with everyone
                yield Alltoall(size_bytes=b_bytes / size)
            # one pair = nvir^2 * naux multiply-adds; the dgemm kernel's
            # iteration unit is one FMA (2 FLOPs)
            gemm_iters = my_pairs * n_vir * n_vir * n_aux
            yield Compute("ntchem-gemm", iters=gemm_iters,
                          schedule="dynamic", imbalance=1.1)
            yield Compute("ntchem-assemble", iters=my_pairs * n_vir * n_vir)
            # serial pair-energy accumulation / screening bookkeeping
            yield Compute("ntchem-assemble", iters=my_pairs * n_vir / 2.0,
                          serial=True)
            yield Allreduce(size_bytes=8)

        return program
