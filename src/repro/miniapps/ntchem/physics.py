"""RI-MP2 correlation energy (executable).

The MP2 correlation energy for a closed-shell system is

    E2 = sum_{ijab} (ia|jb) [ 2 (ia|jb) - (ib|ja) ]
         / (e_i + e_j - e_a - e_b)

with occupied orbitals i, j, virtuals a, b.  The RI approximation factors
the four-index integrals through an auxiliary basis::

    (ia|jb) ~= sum_P B[P, i, a] B[P, j, b]

so each (i, j) pair costs one ``(naux x nvir)^T (naux x nvir)`` DGEMM —
exactly NTChem-mini's hot loop.  A synthetic but well-conditioned ``B``
tensor and orbital-energy spectrum stand in for the integrals (no basis
set tables are shipped with this reproduction); the tests validate the RI
contraction against the dense four-index reference and the known
negativity/size-consistency properties.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def synthetic_system(
    n_occ: int,
    n_vir: int,
    n_aux: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic (B tensor, occupied energies, virtual energies).

    Orbital energies are strictly separated (occ < 0 < vir) so every MP2
    denominator is negative and the energy is finite and negative.
    """
    if min(n_occ, n_vir, n_aux) < 1:
        raise ConfigurationError("orbital space sizes must be positive")
    b = rng.standard_normal((n_aux, n_occ, n_vir)) / np.sqrt(n_aux)
    e_occ = -1.0 - np.sort(rng.random(n_occ))[::-1]
    e_vir = 0.5 + np.sort(rng.random(n_vir))
    return b, e_occ, e_vir


def four_index_from_ri(b: np.ndarray) -> np.ndarray:
    """Dense (ia|jb) tensor from the RI factors (test oracle)."""
    return np.einsum("pia,pjb->iajb", b, b)


def mp2_energy_dense(iajb: np.ndarray, e_occ: np.ndarray,
                     e_vir: np.ndarray) -> float:
    """Reference MP2 energy from the full four-index tensor."""
    n_occ, n_vir = len(e_occ), len(e_vir)
    denom = (
        e_occ[:, None, None, None] + e_occ[None, None, :, None]
        - e_vir[None, :, None, None] - e_vir[None, None, None, :]
    )
    if np.any(denom >= 0):
        raise ConfigurationError("non-negative MP2 denominator")
    exch = iajb.transpose(0, 3, 2, 1)        # (ib|ja)
    return float(((iajb * (2.0 * iajb - exch)) / denom).sum())


def mp2_energy_ri(b: np.ndarray, e_occ: np.ndarray, e_vir: np.ndarray,
                  pair_block: int = 8) -> float:
    """RI-MP2 energy via per-pair DGEMMs (the NTChem algorithm).

    Iterates (i, j) pairs in blocks; per pair, ``K = B_i^T B_j`` is one
    DGEMM of shape (nvir x naux)(naux x nvir).
    """
    if pair_block < 1:
        raise ConfigurationError("pair_block must be positive")
    n_aux, n_occ, n_vir = b.shape
    energy = 0.0
    for i in range(n_occ):
        bi = b[:, i, :]                      # (naux, nvir)
        for j in range(i, n_occ):
            bj = b[:, j, :]
            k_ij = bi.T @ bj                 # (ia|jb) for fixed i, j
            denom = (e_occ[i] + e_occ[j]
                     - e_vir[:, None] - e_vir[None, :])
            contrib = (k_ij * (2.0 * k_ij - k_ij.T) / denom).sum()
            energy += float(contrib) * (1.0 if i == j else 2.0)
    return energy


def pair_energies(b: np.ndarray, e_occ: np.ndarray,
                  e_vir: np.ndarray) -> np.ndarray:
    """Per-(i, j) pair-energy matrix (used for distributed-sum checks)."""
    n_aux, n_occ, n_vir = b.shape
    out = np.zeros((n_occ, n_occ))
    for i in range(n_occ):
        for j in range(n_occ):
            k_ij = b[:, i, :].T @ b[:, j, :]
            denom = (e_occ[i] + e_occ[j]
                     - e_vir[:, None] - e_vir[None, :])
            out[i, j] = float((k_ij * (2.0 * k_ij - k_ij.T) / denom).sum())
    return out
