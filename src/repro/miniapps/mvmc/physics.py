"""Slater-determinant variational Monte Carlo (executable).

A miniature of mVMC's sampling core for ``n_elec`` free fermions on
``n_sites`` lattice sites:

* the wavefunction amplitude of a configuration ``R`` (an ordered tuple of
  occupied sites) is ``det(Phi[R, :])`` for an orbital matrix ``Phi``;
* Metropolis single-electron hops evaluate the determinant ratio in
  ``O(n_elec)`` via the inverse matrix, and accepted moves update the
  inverse in ``O(n_elec^2)`` with the Sherman-Morrison formula —
  exactly the update structure (rank-1, short dependency chains) whose
  performance the paper analyses;
* the tests validate the fast ratio/update against direct determinants
  and inverses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


def plane_wave_orbitals(n_sites: int, n_elec: int) -> np.ndarray:
    """Real plane-wave orbital matrix ``Phi[site, orbital]`` (full rank)."""
    if not 0 < n_elec <= n_sites:
        raise ConfigurationError("need 0 < n_elec <= n_sites")
    x = np.arange(n_sites)
    cols = []
    k = 0
    while len(cols) < n_elec:
        if k == 0:
            cols.append(np.ones(n_sites))
        else:
            cols.append(np.cos(2 * np.pi * k * x / n_sites))
            if len(cols) < n_elec:
                cols.append(np.sin(2 * np.pi * k * x / n_sites))
        k += 1
    phi = np.stack(cols[:n_elec], axis=1)
    # orthonormalize for conditioning
    q, _ = np.linalg.qr(phi)
    return q


@dataclass
class VmcWalker:
    """One Markov-chain walker: configuration + cached inverse."""

    phi: np.ndarray
    occupied: list[int]
    inv: np.ndarray = field(init=False)
    sign_log: tuple[float, float] = field(init=False)

    def __post_init__(self) -> None:
        n_sites, n_elec = self.phi.shape
        if len(self.occupied) != n_elec:
            raise ConfigurationError("configuration size != electron count")
        if len(set(self.occupied)) != n_elec:
            raise ConfigurationError("double occupancy")
        if any(not 0 <= r < n_sites for r in self.occupied):
            raise ConfigurationError("site index out of range")
        d = self.slater_matrix()
        sign, logdet = np.linalg.slogdet(d)
        if sign == 0:
            raise ConfigurationError("singular initial configuration")
        self.inv = np.linalg.inv(d)
        self.sign_log = (float(sign), float(logdet))

    def slater_matrix(self) -> np.ndarray:
        """``D[e, k] = Phi[R_e, k]``."""
        return self.phi[self.occupied, :]

    # ------------------------------------------------------------------
    def ratio(self, electron: int, new_site: int) -> float:
        """Determinant ratio for moving ``electron`` to ``new_site``,
        in O(n_elec): ``Phi[new_site, :] @ inv[:, electron]``."""
        n_elec = self.phi.shape[1]
        if not 0 <= electron < n_elec:
            raise ConfigurationError("bad electron index")
        if new_site in self.occupied:
            return 0.0
        return float(self.phi[new_site, :] @ self.inv[:, electron])

    def accept(self, electron: int, new_site: int, ratio: float) -> None:
        """Sherman-Morrison update of the cached inverse after a move."""
        if ratio == 0.0:
            raise ConfigurationError("cannot accept a forbidden move")
        u = self.phi[new_site, :] - self.phi[self.occupied[electron], :]
        # inv update for row replacement: D' = D + e_el u^T
        v = self.inv[:, electron].copy()
        w = u @ self.inv                       # row vector
        self.inv -= np.outer(v, w) / ratio
        self.occupied[electron] = new_site
        sign, logdet = self.sign_log
        self.sign_log = (sign * float(np.sign(ratio)),
                         logdet + float(np.log(abs(ratio))))

    def refresh(self) -> float:
        """Recompute the inverse from scratch; returns the drift error."""
        d = self.slater_matrix()
        fresh = np.linalg.inv(d)
        err = float(np.max(np.abs(fresh - self.inv)))
        self.inv = fresh
        sign, logdet = np.linalg.slogdet(d)
        self.sign_log = (float(sign), float(logdet))
        return err


def run_sampling(
    n_sites: int,
    n_elec: int,
    n_sweeps: int,
    rng: np.random.Generator,
    refresh_every: int = 50,
) -> dict[str, float]:
    """Run Metropolis sampling; returns acceptance and accuracy stats."""
    phi = plane_wave_orbitals(n_sites, n_elec)
    walker = VmcWalker(phi, list(range(n_elec)))
    accepted = 0
    proposed = 0
    max_drift = 0.0
    moves_since_refresh = 0
    for sweep in range(n_sweeps):
        for electron in range(n_elec):
            new_site = int(rng.integers(n_sites))
            if new_site in walker.occupied:
                continue
            proposed += 1
            r = walker.ratio(electron, new_site)
            if r * r > rng.random():           # |psi'|^2 / |psi|^2
                walker.accept(electron, new_site, r)
                accepted += 1
                moves_since_refresh += 1
                if moves_since_refresh >= refresh_every:
                    max_drift = max(max_drift, walker.refresh())
                    moves_since_refresh = 0
    max_drift = max(max_drift, walker.refresh())
    return {
        "acceptance": accepted / max(1, proposed),
        "max_drift": max_drift,
        "proposed": float(proposed),
    }
