"""Performance skeleton of mVMC-mini.

Samples are embarrassingly parallel over ranks; per sample:

* ``sweeps x n_elec`` Metropolis proposals, each an O(n_elec) ratio dot
  (short dependent chain — the "pfaffian-update" kernel class) and, on
  acceptance, an O(n_elec^2) Sherman-Morrison update;
* a Green's-function/observable evaluation per measurement interval
  (dense matrix products — DGEMM class);
* one parameter-optimization ``Allreduce`` of the overlap matrices at the
  end of each optimization step (size ~ n_params^2 doubles).

As-is, the update loops neither vectorize nor fill the A64FX pipes
(ilp ~ 3, 9-cycle FMA latency); the compiler-tuning experiment recovers
2-3x, matching the paper's narrative for this app.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.kernels.kernel import LoopKernel
from repro.kernels.presets import dense_update_pfaffian, dgemm_blocked
from repro.miniapps import decomp
from repro.miniapps.base import Dataset, MiniApp
from repro.runtime.program import Allreduce, Compute
from repro.units import FP64_BYTES


class Mvmc(MiniApp):
    name = "mvmc"
    full_name = "mVMC-MINI (many-variable Variational Monte Carlo)"
    description = ("Quantum lattice-model ground states via Markov-chain "
                   "sampling with Slater/Pfaffian wavefunctions")
    character = "compute"

    def make_datasets(self) -> list[Dataset]:
        return [
            Dataset("as-is", "16-site chain, 8 electrons, 128 samples, "
                             "2 optimization steps",
                    {"n_sites": 16, "n_elec": 8, "samples": 128,
                     "sweeps": 100, "opt_steps": 2, "n_params": 96}),
            Dataset("large", "144-site lattice, 72 electrons, 512 samples, "
                             "4 optimization steps",
                    {"n_sites": 144, "n_elec": 72, "samples": 512,
                     "sweeps": 30, "opt_steps": 4, "n_params": 1024}),
        ]

    # ------------------------------------------------------------------
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        n_elec = dataset["n_elec"]
        update = dense_update_pfaffian(n_elec)
        # One "iteration" of the proposal kernel = one O(n_elec) ratio dot.
        ratio = LoopKernel(
            name="mvmc-ratio",
            flops=2.0 * n_elec,
            fma_fraction=1.0,
            bytes_load=2 * n_elec * FP64_BYTES,
            bytes_store=FP64_BYTES,
            working_set_bytes=float(n_elec * n_elec * FP64_BYTES),
            streaming_fraction=0.1,
            vec_fraction=0.85,
            ilp=2.5,                        # reduction over a short vector
            contiguous_fraction=0.8,        # column gathers of the inverse
        )
        green = dgemm_blocked(block=max(16, min(96, n_elec)))
        return {
            "mvmc-ratio": ratio,
            "mvmc-update": update,
            "mvmc-green": green,
        }

    # ------------------------------------------------------------------
    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     b) -> None:
        """Closed form of ``make_program`` (checked against replay)."""
        n_sites = dataset["n_sites"]
        n_elec = dataset["n_elec"]
        samples = dataset["samples"]
        sweeps = dataset["sweeps"]
        opt_steps = dataset["opt_steps"]
        n_params = dataset["n_params"]
        my_samples = decomp.split_1d(samples, n_ranks, rank)
        if my_samples > 0:
            proposals = my_samples * sweeps * n_elec
            b.compute("mvmc-ratio", proposals * opt_steps,
                      regions=opt_steps, schedule="dynamic", imbalance=1.2)
            b.compute("mvmc-update",
                      proposals * 0.45 * n_elec * n_elec * opt_steps,
                      regions=opt_steps, schedule="dynamic", imbalance=1.2)
            b.compute("mvmc-green",
                      my_samples * (n_elec ** 2 * n_sites) / 2.0 * opt_steps,
                      regions=opt_steps)
        b.compute("mvmc-update", n_params * n_params / 4.0 * opt_steps,
                  regions=opt_steps, serial=True)
        b.collective("allreduce", n_params * n_params * FP64_BYTES,
                     count=opt_steps)

    # ------------------------------------------------------------------
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        n_sites = dataset["n_sites"]
        n_elec = dataset["n_elec"]
        samples = dataset["samples"]
        sweeps = dataset["sweeps"]
        opt_steps = dataset["opt_steps"]
        n_params = dataset["n_params"]
        acceptance = 0.45                   # typical Metropolis acceptance

        def program(rank: int, size: int) -> Iterator:
            my_samples = decomp.split_1d(samples, size, rank)
            proposals = my_samples * sweeps * n_elec
            accepts = proposals * acceptance
            green_flops_iters = my_samples * (n_elec ** 2 * n_sites) / 2.0
            for _ in range(opt_steps):
                if my_samples > 0:
                    # sampling is per-walker sequential: dynamic schedule
                    # with mild imbalance across walkers
                    yield Compute("mvmc-ratio", iters=proposals,
                                  schedule="dynamic", imbalance=1.2)
                    yield Compute("mvmc-update",
                                  iters=accepts * n_elec * n_elec,
                                  schedule="dynamic", imbalance=1.2)
                    yield Compute("mvmc-green", iters=green_flops_iters)
                # serial parameter update (the optimizer solves a small
                # linear system on the master thread)
                yield Compute("mvmc-update", iters=n_params * n_params / 4.0,
                              serial=True)
                # overlap-matrix reduction for the parameter optimizer
                yield Allreduce(size_bytes=n_params * n_params * FP64_BYTES)

        return program
