"""Hubbard-model VMC: local energies, sampling, and an exact-diagonalization
oracle.

Extends the Slater-determinant machinery of
:mod:`repro.miniapps.mvmc.physics` to the physics mVMC actually targets —
the repulsive Hubbard model::

    H = -t sum_<ij>,sigma (c+_i c_j + h.c.)  +  U sum_i n_i_up n_i_dn

* :class:`HubbardVmc` — a two-spin walker pair with Metropolis sampling
  and the standard local-energy estimator (kinetic part via determinant
  ratios, interaction part by counting double occupancies);
* :func:`exact_ground_energy` — full diagonalization in the fixed
  particle-number sector (the test oracle for small systems);
* the test suite exploits the **zero-variance property**: when the trial
  wavefunction is an exact eigenstate (U = 0, orbitals = lowest hopping
  eigenvectors), every sampled local energy equals the exact energy.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.errors import ConfigurationError
from repro.miniapps.mvmc.physics import VmcWalker


def ring_adjacency(n_sites: int) -> np.ndarray:
    """Nearest-neighbour adjacency matrix of a 1D periodic chain."""
    if n_sites < 3:
        raise ConfigurationError("ring needs at least 3 sites")
    adj = np.zeros((n_sites, n_sites), dtype=bool)
    for i in range(n_sites):
        adj[i, (i + 1) % n_sites] = True
        adj[i, (i - 1) % n_sites] = True
    return adj


def hopping_orbitals(adjacency: np.ndarray, n_elec: int,
                     t: float = 1.0) -> np.ndarray:
    """Lowest ``n_elec`` eigenvectors of the tight-binding Hamiltonian.

    These are the exact single-particle orbitals; at U = 0 the Slater
    determinant built from them is the many-body ground state.
    """
    n_sites = adjacency.shape[0]
    if not 0 < n_elec <= n_sites:
        raise ConfigurationError("need 0 < n_elec <= n_sites")
    h = np.where(adjacency, -t, 0.0).astype(float)
    vals, vecs = np.linalg.eigh(h)
    return vecs[:, :n_elec]


class HubbardVmc:
    """Metropolis VMC for the Hubbard model with Slater trial states."""

    def __init__(self, adjacency: np.ndarray, n_up: int, n_dn: int,
                 t: float = 1.0, u: float = 0.0,
                 orbitals_up: np.ndarray | None = None,
                 orbitals_dn: np.ndarray | None = None) -> None:
        if u < 0 or t <= 0:
            raise ConfigurationError("need t > 0 and U >= 0")
        self.adjacency = adjacency
        self.n_sites = adjacency.shape[0]
        self.t = t
        self.u = u
        phi_up = orbitals_up if orbitals_up is not None \
            else hopping_orbitals(adjacency, n_up, t)
        phi_dn = orbitals_dn if orbitals_dn is not None \
            else hopping_orbitals(adjacency, n_dn, t)
        # start from staggered configurations so the determinants are
        # non-singular
        self.up = VmcWalker(phi_up, list(range(n_up)))
        self.dn = VmcWalker(phi_dn,
                            list(range(self.n_sites - n_dn, self.n_sites)))

    # ------------------------------------------------------------------
    def local_energy(self) -> float:
        """E_loc(C) = <C|H|psi> / <C|psi>."""
        kin = 0.0
        for walker in (self.up, self.dn):
            occupied = set(walker.occupied)
            for e, site in enumerate(walker.occupied):
                for nbr in np.nonzero(self.adjacency[site])[0]:
                    if int(nbr) in occupied:
                        continue
                    kin += -self.t * walker.ratio(e, int(nbr))
        doubles = len(set(self.up.occupied) & set(self.dn.occupied))
        return kin + self.u * doubles

    def step(self, rng: np.random.Generator) -> bool:
        """One Metropolis move (random spin, electron, neighbour site)."""
        walker = self.up if rng.random() < 0.5 else self.dn
        e = int(rng.integers(len(walker.occupied)))
        site = walker.occupied[e]
        nbrs = np.nonzero(self.adjacency[site])[0]
        new_site = int(nbrs[rng.integers(len(nbrs))])
        if new_site in walker.occupied:
            return False
        r = walker.ratio(e, new_site)
        if r * r > rng.random():
            walker.accept(e, new_site, r)
            return True
        return False

    def run(self, rng: np.random.Generator, n_sweeps: int,
            n_thermalize: int = 50) -> tuple[float, float]:
        """(mean local energy, standard error) over the sampled chain."""
        if n_sweeps < 1:
            raise ConfigurationError("need at least one sweep")
        moves_per_sweep = len(self.up.occupied) + len(self.dn.occupied)
        for _ in range(n_thermalize * moves_per_sweep):
            self.step(rng)
        samples = []
        for _ in range(n_sweeps):
            for _ in range(moves_per_sweep):
                self.step(rng)
            samples.append(self.local_energy())
        arr = np.asarray(samples)
        return float(arr.mean()), float(arr.std(ddof=1) / np.sqrt(len(arr)))


# ----------------------------------------------------------------------
# exact diagonalization oracle
# ----------------------------------------------------------------------
def _sector_basis(n_sites: int, n_elec: int) -> list[tuple[int, ...]]:
    return list(combinations(range(n_sites), n_elec))


def _hop_sign(state: tuple[int, ...], src: int, dst: int) -> tuple[tuple[int, ...], int]:
    """Apply c+_dst c_src to an ordered occupation tuple; returns
    (new state, fermionic sign) or (state, 0) if forbidden."""
    if src not in state or dst in state:
        return state, 0
    lst = list(state)
    i = lst.index(src)
    sign = (-1) ** i            # bring c_src to the front
    lst.pop(i)
    j = sum(1 for s in lst if s < dst)
    sign *= (-1) ** j           # insert c+_dst
    lst.insert(j, dst)
    return tuple(lst), sign


def exact_ground_energy(adjacency: np.ndarray, n_up: int, n_dn: int,
                        t: float = 1.0, u: float = 0.0) -> float:
    """Ground-state energy of the Hubbard sector by full diagonalization.

    Intended for tiny systems (dimension C(L, n_up) * C(L, n_dn)).
    """
    n_sites = adjacency.shape[0]
    basis_up = _sector_basis(n_sites, n_up)
    basis_dn = _sector_basis(n_sites, n_dn)
    index_up = {s: i for i, s in enumerate(basis_up)}
    index_dn = {s: i for i, s in enumerate(basis_dn)}
    du, dd = len(basis_up), len(basis_dn)
    dim = du * dd
    if dim > 5000:
        raise ConfigurationError(f"sector dimension {dim} too large for ED")
    h = np.zeros((dim, dim))
    bonds = [(i, int(j)) for i in range(n_sites)
             for j in np.nonzero(adjacency[i])[0]]

    for iu, su in enumerate(basis_up):
        for idn, sd in enumerate(basis_dn):
            row = iu * dd + idn
            # interaction
            h[row, row] += u * len(set(su) & set(sd))
            # up hops
            for src, dst in bonds:
                new, sign = _hop_sign(su, src, dst)
                if sign:
                    col = index_up[new] * dd + idn
                    h[col, row] += -t * sign
            # down hops
            for src, dst in bonds:
                new, sign = _hop_sign(sd, src, dst)
                if sign:
                    col = iu * dd + index_dn[new]
                    h[col, row] += -t * sign
    vals = np.linalg.eigvalsh(h)
    return float(vals[0])
