"""mVMC-MINI: many-variable variational Monte Carlo.

Samples fermionic configurations with a Slater-determinant (Pfaffian, in
the full code) wavefunction; the hot loops are determinant-ratio
evaluations and Sherman-Morrison inverse updates — short dependent dense
updates that expose the A64FX's out-of-order limits until the compiler's
scheduling is enabled (a headline case of the paper's tuning experiment).
"""

from repro.miniapps.mvmc.skeleton import Mvmc

__all__ = ["Mvmc"]
