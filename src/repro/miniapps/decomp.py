"""Domain-decomposition helpers shared by the miniapp skeletons."""

from __future__ import annotations

from repro.errors import ConfigurationError


def split_1d(total: int, parts: int, index: int) -> int:
    """Size of chunk ``index`` when ``total`` items are split into
    ``parts`` near-equal contiguous chunks (first chunks get the remainder).
    """
    if parts < 1 or not 0 <= index < parts:
        raise ConfigurationError(f"bad split: total={total} parts={parts} index={index}")
    base, rem = divmod(total, parts)
    return base + (1 if index < rem else 0)


def factor3(n: int) -> tuple[int, int, int]:
    """Factor ``n`` into three near-equal factors (px >= py >= pz).

    Used for 3D Cartesian rank grids; exact (px*py*pz == n) for every n.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    best = (n, 1, 1)
    best_score = None
    for pz in range(1, int(round(n ** (1 / 3))) + 2):
        if n % pz:
            continue
        m = n // pz
        for py in range(pz, int(m ** 0.5) + 2):
            if m % py:
                continue
            px = m // py
            if px < py:
                continue
            score = (px - pz, px - py)
            if best_score is None or score < best_score:
                best_score = score
                best = (px, py, pz)
    return best


def factor2(n: int) -> tuple[int, int]:
    """Factor ``n`` into two near-equal factors (px >= py)."""
    if n < 1:
        raise ConfigurationError("n must be positive")
    for py in range(int(n ** 0.5), 0, -1):
        if n % py == 0:
            return (n // py, py)
    raise AssertionError("unreachable")  # pragma: no cover


def _divisor_pairs(n: int):
    for p in range(1, n + 1):
        if n % p == 0:
            yield p, n // p


def best_factor2(n: int, extents: tuple[int, int]) -> tuple[int, int]:
    """Factor ``n`` into (p0, p1) minimizing per-rank halo surface for a
    domain of the given extents (a decomposed axis contributes a face of
    the orthogonal extent).  This is what shape-aware production codes do
    instead of blindly near-square rank grids.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    e0, e1 = extents
    best: tuple[int, int] | None = None
    best_cost = None
    for p0, p1 in _divisor_pairs(n):
        if p0 > e0 or p1 > e1:
            continue
        cost = 0.0
        if p0 > 1:
            cost += 2.0 * (e1 / p1)
        if p1 > 1:
            cost += 2.0 * (e0 / p0)
        if best_cost is None or cost < best_cost:
            best, best_cost = (p0, p1), cost
    if best is None:
        raise ConfigurationError(
            f"cannot decompose extents {extents} over {n} ranks"
        )
    return best


def best_factor3(n: int, extents: tuple[int, int, int]) -> tuple[int, int, int]:
    """Shape-aware 3D factorization minimizing per-rank face area."""
    if n < 1:
        raise ConfigurationError("n must be positive")
    ex, ey, ez = extents
    best: tuple[int, int, int] | None = None
    best_cost = None
    for px in range(1, n + 1):
        if n % px:
            continue
        m = n // px
        for py, pz in _divisor_pairs(m):
            if px > ex or py > ey or pz > ez:
                continue
            lx, ly, lz = ex / px, ey / py, ez / pz
            cost = 0.0
            if px > 1:
                cost += 2.0 * ly * lz
            if py > 1:
                cost += 2.0 * lx * lz
            if pz > 1:
                cost += 2.0 * lx * ly
            if best_cost is None or cost < best_cost:
                best, best_cost = (px, py, pz), cost
    if best is None:
        raise ConfigurationError(
            f"cannot decompose extents {extents} over {n} ranks"
        )
    return best


def rank_to_coords3(rank: int, grid: tuple[int, int, int]) -> tuple[int, int, int]:
    """Rank -> (x, y, z) coordinates on a 3D rank grid (x fastest)."""
    px, py, pz = grid
    if not 0 <= rank < px * py * pz:
        raise ConfigurationError(f"rank {rank} outside {grid} grid")
    x = rank % px
    y = (rank // px) % py
    z = rank // (px * py)
    return (x, y, z)


def coords_to_rank3(coords: tuple[int, int, int],
                    grid: tuple[int, int, int]) -> int:
    """Inverse of :func:`rank_to_coords3` (with periodic wrap-around)."""
    px, py, pz = grid
    x, y, z = coords
    return (x % px) + (y % py) * px + (z % pz) * px * py


def neighbors3(rank: int, grid: tuple[int, int, int]) -> dict[str, int]:
    """Periodic face neighbours of a rank on a 3D grid.

    Keys: ``x-``, ``x+``, ``y-``, ``y+``, ``z-``, ``z+``.  Axes with a
    single rank map to the rank itself (callers skip self-neighbours).
    """
    x, y, z = rank_to_coords3(rank, grid)
    return {
        "x-": coords_to_rank3((x - 1, y, z), grid),
        "x+": coords_to_rank3((x + 1, y, z), grid),
        "y-": coords_to_rank3((x, y - 1, z), grid),
        "y+": coords_to_rank3((x, y + 1, z), grid),
        "z-": coords_to_rank3((x, y, z - 1), grid),
        "z+": coords_to_rank3((x, y, z + 1), grid),
    }


def local_box(global_shape: tuple[int, ...], grid: tuple[int, ...],
              coords: tuple[int, ...]) -> tuple[int, ...]:
    """Local sub-box shape of one rank in a Cartesian decomposition."""
    if len(global_shape) != len(grid) or len(grid) != len(coords):
        raise ConfigurationError("shape/grid/coords dimensionality mismatch")
    return tuple(
        split_1d(g, p, c) for g, p, c in zip(global_shape, grid, coords)
    )


def halo_bytes_3d(local: tuple[int, int, int], fields: int,
                  elem_bytes: int = 8, width: int = 1) -> dict[str, float]:
    """Per-face halo payloads of a 3D sub-box, bytes.

    Keys match :func:`neighbors3`.
    """
    nx, ny, nz = local
    if min(nx, ny, nz) < 1 or fields < 1 or width < 1:
        raise ConfigurationError("bad halo geometry")
    return {
        "x-": ny * nz * width * fields * elem_bytes,
        "x+": ny * nz * width * fields * elem_bytes,
        "y-": nx * nz * width * fields * elem_bytes,
        "y+": nx * nz * width * fields * elem_bytes,
        "z-": nx * ny * width * fields * elem_bytes,
        "z+": nx * ny * width * fields * elem_bytes,
    }
