"""Cell-list molecular dynamics (executable).

Lennard-Jones particles in a periodic cubic box:

* :func:`build_cells` — linked-cell decomposition at the cutoff radius;
* :func:`lj_forces_cells` — O(N) short-range forces via the 27-cell
  neighbourhood (validated against :func:`lj_forces_bruteforce`);
* :func:`velocity_verlet` — the symplectic integrator;
* the tests check Newton's third law, brute-force agreement, and energy
  drift over an NVE trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def init_lattice(n_per_side: int, spacing: float,
                 rng: np.random.Generator | None = None,
                 jitter: float = 0.05) -> tuple[np.ndarray, float]:
    """Particles on a jittered cubic lattice; returns (positions, box)."""
    if n_per_side < 2:
        raise ConfigurationError("need at least 2 particles per side")
    box = n_per_side * spacing
    grid = np.arange(n_per_side) * spacing
    x, y, z = np.meshgrid(grid, grid, grid, indexing="ij")
    pos = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
    if rng is not None and jitter > 0:
        pos = pos + rng.uniform(-jitter, jitter, pos.shape) * spacing
    return np.mod(pos, box), box


def minimum_image(dr: np.ndarray, box: float) -> np.ndarray:
    return dr - box * np.round(dr / box)


def lj_pair(r2: np.ndarray, eps: float = 1.0, sigma: float = 1.0
            ) -> tuple[np.ndarray, np.ndarray]:
    """LJ energy and force magnitude / r for squared distances ``r2``."""
    s2 = (sigma * sigma) / r2
    s6 = s2 * s2 * s2
    energy = 4.0 * eps * (s6 * s6 - s6)
    fmag_over_r = 24.0 * eps * (2.0 * s6 * s6 - s6) / r2
    return energy, fmag_over_r


def lj_forces_bruteforce(pos: np.ndarray, box: float, cutoff: float
                         ) -> tuple[np.ndarray, float]:
    """O(N^2) reference forces + potential energy."""
    n = len(pos)
    forces = np.zeros_like(pos)
    energy = 0.0
    c2 = cutoff * cutoff
    for i in range(n - 1):
        dr = minimum_image(pos[i + 1:] - pos[i], box)
        r2 = (dr * dr).sum(axis=1)
        mask = r2 < c2
        if not mask.any():
            continue
        e, f_over_r = lj_pair(r2[mask])
        energy += float(e.sum())
        fij = dr[mask] * f_over_r[:, None]
        forces[i] -= fij.sum(axis=0)
        forces[i + 1:][mask] += fij
    return forces, energy


def build_cells(pos: np.ndarray, box: float, cutoff: float
                ) -> tuple[dict[tuple[int, int, int], np.ndarray], int]:
    """Linked cells of side >= cutoff; returns (cell -> particle ids, side)."""
    if cutoff <= 0 or box <= 0:
        raise ConfigurationError("cutoff and box must be positive")
    n_cells = max(1, int(box / cutoff))
    side = box / n_cells
    idx = np.minimum((pos / side).astype(int), n_cells - 1)
    cells: dict[tuple[int, int, int], list[int]] = {}
    for p, (cx, cy, cz) in enumerate(idx):
        cells.setdefault((int(cx), int(cy), int(cz)), []).append(p)
    return ({k: np.asarray(v) for k, v in cells.items()}, n_cells)


def lj_forces_cells(pos: np.ndarray, box: float, cutoff: float
                    ) -> tuple[np.ndarray, float]:
    """O(N) cell-list forces + potential energy."""
    cells, n_cells = build_cells(pos, box, cutoff)
    forces = np.zeros_like(pos)
    energy = 0.0
    c2 = cutoff * cutoff
    offsets = [(dx, dy, dz)
               for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)]
    for (cx, cy, cz), ids in cells.items():
        # With few cells per side, periodic wrapping aliases several offsets
        # to the same neighbour cell — deduplicate the key set so each cell
        # pair is processed exactly once.
        neighbour_keys = {
            ((cx + ox) % n_cells, (cy + oy) % n_cells, (cz + oz) % n_cells)
            for ox, oy, oz in offsets
        }
        for key in sorted(neighbour_keys):
            other = cells.get(key)
            if other is None:
                continue
            # avoid double counting: only process ordered cell pairs, and
            # ordered particle pairs within a cell
            if key < (cx, cy, cz):
                continue
            same = key == (cx, cy, cz)
            for a_pos, a in zip(pos[ids], ids):
                js = other[other > a] if same else other
                if len(js) == 0:
                    continue
                dr = minimum_image(pos[js] - a_pos, box)
                r2 = (dr * dr).sum(axis=1)
                mask = r2 < c2
                if not mask.any():
                    continue
                e, f_over_r = lj_pair(r2[mask])
                energy += float(e.sum())
                fij = dr[mask] * f_over_r[:, None]
                forces[a] -= fij.sum(axis=0)
                np.add.at(forces, js[mask], fij)
    return forces, energy


def velocity_verlet(
    pos: np.ndarray,
    vel: np.ndarray,
    box: float,
    cutoff: float,
    dt: float,
    n_steps: int,
) -> tuple[np.ndarray, np.ndarray, list[float]]:
    """NVE integration; returns (pos, vel, total-energy history)."""
    if dt <= 0 or n_steps < 1:
        raise ConfigurationError("bad integration parameters")
    forces, pot = lj_forces_cells(pos, box, cutoff)
    energies = []
    for _ in range(n_steps):
        vel = vel + 0.5 * dt * forces
        pos = np.mod(pos + dt * vel, box)
        forces, pot = lj_forces_cells(pos, box, cutoff)
        vel = vel + 0.5 * dt * forces
        kin = 0.5 * float((vel * vel).sum())
        energies.append(kin + pot)
    return pos, vel, energies
