"""MODYLAS-MINI: general-purpose molecular dynamics with FMM electrostatics.

Short-range Lennard-Jones/Coulomb pair forces over cell lists plus a fast
multipole method for the long-range part.  :mod:`physics` implements the
cell-list MD integrator (validated against brute-force forces and energy
conservation); :mod:`skeleton` adds the FMM tree phases and the halo/
tree-exchange communication pattern.
"""

from repro.miniapps.modylas.skeleton import Modylas

__all__ = ["Modylas"]
