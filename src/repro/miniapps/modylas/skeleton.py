"""Performance skeleton of MODYLAS-mini.

Per MD timestep on a 3D rank decomposition:

* boundary-atom halo exchange (6 faces, ~surface-density atoms x 48 B);
* the short-range pair-force kernel (per pair: ~30 FLOPs, coordinate
  gathers through the cell list);
* FMM phases: P2M/M2M (upward), M2L (the flop-heavy translation — small
  dense blocks, modeled as a (p^2)^2 operation per interaction-list
  entry), L2L/L2P (downward), with an ``Allgather`` of the coarse tree
  levels;
* integrator update (stream-class) and an energy ``Allreduce``.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.kernels.kernel import LoopKernel
from repro.kernels.presets import particle_pair_force
from repro.miniapps import decomp
from repro.miniapps.base import Dataset, MiniApp
from repro.runtime.program import (
    Allgather,
    Allreduce,
    Compute,
    Irecv,
    Isend,
    WaitAll,
)
from repro.units import FP64_BYTES, KIB

#: FMM multipole order used by the cost model (p=4 -> 16 coeff pairs).
FMM_ORDER = 4


class Modylas(MiniApp):
    name = "modylas"
    full_name = "MODYLAS-MINI"
    description = ("Classical molecular dynamics with FMM long-range "
                   "electrostatics; cell-list pair forces dominate")
    character = "mixed"

    def make_datasets(self) -> list[Dataset]:
        return [
            Dataset("as-is", "19,656-atom water box, 10 steps",
                    {"atoms": 19_656, "steps": 10, "neighbors": 60,
                     "cells": 8 ** 3}),
            Dataset("large", "1.2M-atom box, 20 steps",
                    {"atoms": 1_200_000, "steps": 20, "neighbors": 60,
                     "cells": 32 ** 3}),
        ]

    # ------------------------------------------------------------------
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        pair = particle_pair_force()
        coeffs = (FMM_ORDER + 1) ** 2
        # One iteration = one interaction-list entry (M2L translation);
        # rotation-based translations cost O(p^3) ~ 12 x coeffs FLOPs.
        m2l = LoopKernel(
            name="modylas-m2l",
            flops=12.0 * coeffs,
            fma_fraction=0.9,
            bytes_load=2 * coeffs * FP64_BYTES,
            bytes_store=coeffs * FP64_BYTES / 8.0,
            working_set_bytes=float(coeffs * coeffs * FP64_BYTES),
            streaming_fraction=0.2,
            vec_fraction=0.9,
            ilp=10.0,
            contiguous_fraction=0.85,
        )
        integrate = LoopKernel(
            name="modylas-integrate",
            flops=18.0,                      # per atom: 2 half-kicks + drift
            fma_fraction=0.9,
            bytes_load=9 * FP64_BYTES,
            bytes_store=6 * FP64_BYTES,
            streaming_fraction=1.0,
            vec_fraction=1.0,
            ilp=9.0,
        )
        cell_build = LoopKernel(
            name="modylas-cellbuild",
            flops=3.0,
            fma_fraction=0.3,
            bytes_load=4 * FP64_BYTES,
            bytes_store=2 * FP64_BYTES,
            working_set_bytes=64.0 * KIB,
            streaming_fraction=0.7,
            vec_fraction=0.3,                # index arithmetic + scatter
            ilp=3.0,
            contiguous_fraction=0.5,
            int_ops=8.0,
        )
        return {
            "modylas-pair": pair,
            "modylas-m2l": m2l,
            "modylas-integrate": integrate,
            "modylas-cellbuild": cell_build,
        }

    # ------------------------------------------------------------------
    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     b) -> None:
        """Closed form of ``make_program`` (checked against replay)."""
        atoms = dataset["atoms"]
        steps = dataset["steps"]
        neighbors = dataset["neighbors"]
        cells = dataset["cells"]
        pgrid = decomp.factor3(n_ranks)
        coeffs = (FMM_ORDER + 1) ** 2
        my_atoms = decomp.split_1d(atoms, n_ranks, rank)
        my_cells = decomp.split_1d(cells, n_ranks, rank)
        surface = max(1.0, my_atoms ** (2.0 / 3.0))
        halo_bytes = surface * 6 * FP64_BYTES
        nbrs = decomp.neighbors3(rank, pgrid)

        partners = []
        for axis in "xyz":
            lo, hi = nbrs[f"{axis}-"], nbrs[f"{axis}+"]
            if lo == rank:
                continue
            partners += [(hi, halo_bytes), (lo, halo_bytes)]
        if partners:
            b.exchange(rank, partners, count=steps)
        b.compute("modylas-cellbuild", 0.25 * my_atoms * steps,
                  regions=steps, serial=True)
        b.compute("modylas-cellbuild", my_atoms * steps, regions=steps)
        b.compute("modylas-pair", my_atoms * neighbors / 2.0 * steps,
                  regions=steps, schedule="dynamic", imbalance=1.3)
        b.compute("modylas-m2l", my_cells * 189 * steps, regions=steps)
        if n_ranks > 1:
            b.collective("allgather",
                         max(64, my_cells // 8) * coeffs * FP64_BYTES,
                         count=steps)
        b.compute("modylas-integrate", my_atoms * steps, regions=steps)
        b.collective("allreduce", 16, count=steps)

    # ------------------------------------------------------------------
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        atoms = dataset["atoms"]
        steps = dataset["steps"]
        neighbors = dataset["neighbors"]
        cells = dataset["cells"]
        pgrid = decomp.factor3(n_ranks)
        coeffs = (FMM_ORDER + 1) ** 2

        def program(rank: int, size: int) -> Iterator:
            my_atoms = decomp.split_1d(atoms, size, rank)
            my_cells = decomp.split_1d(cells, size, rank)
            # surface atoms ~ my_atoms^(2/3) density per face
            surface = max(1.0, my_atoms ** (2.0 / 3.0))
            halo_bytes = surface * 6 * FP64_BYTES
            nbrs = decomp.neighbors3(rank, pgrid)
            # 189-entry interaction list per cell (3D FMM)
            m2l_iters = my_cells * 189

            for _ in range(steps):
                # halo of boundary atoms
                reqs = []
                tag = 0
                for axis in "xyz":
                    lo, hi = nbrs[f"{axis}-"], nbrs[f"{axis}+"]
                    if lo == rank:
                        continue
                    reqs.append((yield Irecv(src=lo, tag=tag)))
                    reqs.append((yield Irecv(src=hi, tag=tag + 1)))
                    yield Isend(dst=hi, tag=tag, size_bytes=halo_bytes)
                    yield Isend(dst=lo, tag=tag + 1, size_bytes=halo_bytes)
                    tag += 2
                if reqs:
                    yield WaitAll(reqs)

                # the cell-list rebuild has a serial bucket-counting pass
                yield Compute("modylas-cellbuild", iters=0.25 * my_atoms,
                              serial=True)
                yield Compute("modylas-cellbuild", iters=my_atoms)
                yield Compute("modylas-pair",
                              iters=my_atoms * neighbors / 2.0,
                              schedule="dynamic", imbalance=1.3)
                # FMM upward pass is cheap; M2L dominates
                yield Compute("modylas-m2l", iters=m2l_iters)
                if size > 1:
                    # coarse tree levels are replicated via allgather
                    yield Allgather(
                        size_bytes=max(64, my_cells // 8) * coeffs * FP64_BYTES
                    )
                yield Compute("modylas-integrate", iters=my_atoms)
                yield Allreduce(size_bytes=16)

        return program
