"""Hierarchical multipole (Barnes-Hut) long-range electrostatics.

MODYLAS computes long-range Coulomb forces with the fast multipole method.
This module implements the tree-code member of that family — an octree
with monopole + dipole + (traceless) quadrupole expansions and a
Barnes-Hut opening criterion — which exercises the same structure
(tree build, upward moment pass, far-field evaluation) while staying
compact enough to validate against direct summation:

* :func:`direct_potential_energy` / :func:`direct_forces` — O(N^2) oracle;
* :class:`Octree` — adaptive tree with per-cell multipole moments;
* :func:`tree_forces` — Barnes-Hut evaluation with controllable accuracy
  (``theta`` -> 0 recovers the direct sum).

Open (non-periodic) boundaries; charges in a cubic box.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


def direct_potential_energy(pos: np.ndarray, q: np.ndarray) -> float:
    """Exact pairwise Coulomb energy (oracle)."""
    n = len(pos)
    energy = 0.0
    for i in range(n - 1):
        dr = pos[i + 1:] - pos[i]
        r = np.sqrt((dr * dr).sum(axis=1))
        energy += float((q[i] * q[i + 1:] / r).sum())
    return energy


def direct_forces(pos: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Exact pairwise Coulomb forces (oracle)."""
    n = len(pos)
    forces = np.zeros_like(pos)
    for i in range(n):
        dr = pos - pos[i]
        r2 = (dr * dr).sum(axis=1)
        r2[i] = np.inf
        inv_r3 = 1.0 / (r2 * np.sqrt(r2))
        fi = (q[i] * q)[:, None] * dr * inv_r3[:, None]
        forces[i] = -fi.sum(axis=0)
    return forces


@dataclass
class _Cell:
    center: np.ndarray              # geometric center of the cell cube
    size: float
    particles: np.ndarray           # indices (leaves only)
    children: list = field(default_factory=list)
    # moments about the charge centroid
    charge: float = 0.0
    centroid: np.ndarray | None = None
    dipole: np.ndarray | None = None
    quadrupole: np.ndarray | None = None


class Octree:
    """Adaptive octree with multipole moments up to quadrupole order."""

    def __init__(self, pos: np.ndarray, q: np.ndarray,
                 leaf_size: int = 8) -> None:
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ConfigurationError("positions must be (n, 3)")
        if len(pos) != len(q):
            raise ConfigurationError("positions/charges length mismatch")
        if leaf_size < 1:
            raise ConfigurationError("leaf_size must be >= 1")
        self.pos = pos
        self.q = q
        self.leaf_size = leaf_size
        lo, hi = pos.min(axis=0), pos.max(axis=0)
        center = (lo + hi) / 2.0
        size = float((hi - lo).max()) * 1.0001 + 1e-12
        self.root = self._build(np.arange(len(pos)), center, size)
        self._compute_moments(self.root)

    # ------------------------------------------------------------------
    def _build(self, idx: np.ndarray, center: np.ndarray,
               size: float) -> _Cell:
        cell = _Cell(center=center, size=size, particles=idx)
        if len(idx) <= self.leaf_size:
            return cell
        half = size / 4.0
        p = self.pos[idx]
        octant = ((p[:, 0] > center[0]).astype(int)
                  + 2 * (p[:, 1] > center[1]).astype(int)
                  + 4 * (p[:, 2] > center[2]).astype(int))
        for o in range(8):
            sub = idx[octant == o]
            if len(sub) == 0:
                continue
            offset = np.array([
                half if o & 1 else -half,
                half if o & 2 else -half,
                half if o & 4 else -half,
            ])
            cell.children.append(self._build(sub, center + offset, size / 2))
        cell.particles = np.empty(0, dtype=int)  # interior cells hold none
        return cell

    def _compute_moments(self, cell: _Cell) -> None:
        for child in cell.children:
            self._compute_moments(child)
        members = self._collect(cell)
        qs = self.q[members]
        ps = self.pos[members]
        cell.charge = float(qs.sum())
        if abs(cell.charge) > 1e-300:
            cell.centroid = (qs[:, None] * ps).sum(axis=0) / cell.charge
        else:
            cell.centroid = ps.mean(axis=0) if len(ps) else cell.center.copy()
        d = ps - cell.centroid
        cell.dipole = (qs[:, None] * d).sum(axis=0)
        # traceless quadrupole: Q_ab = sum q (3 d_a d_b - |d|^2 delta_ab)
        r2 = (d * d).sum(axis=1)
        quad = 3.0 * np.einsum("p,pa,pb->ab", qs, d, d)
        quad -= np.eye(3) * float((qs * r2).sum())
        cell.quadrupole = quad

    def _collect(self, cell: _Cell) -> np.ndarray:
        if not cell.children:
            return cell.particles
        return np.concatenate([self._collect(c) for c in cell.children])

    # ------------------------------------------------------------------
    def n_cells(self) -> int:
        def count(c: _Cell) -> int:
            return 1 + sum(count(ch) for ch in c.children)

        return count(self.root)

    def force_at(self, i: int, theta: float) -> np.ndarray:
        """Barnes-Hut force on particle ``i`` with opening angle ``theta``."""
        if not 0.0 <= theta < 2.0:
            raise ConfigurationError("theta must be in [0, 2)")
        xi = self.pos[i]
        force = np.zeros(3)
        stack = [self.root]
        while stack:
            cell = stack.pop()
            members = cell.particles if not cell.children else None
            dr = cell.centroid - xi
            dist = float(np.sqrt((dr * dr).sum()))
            if cell.children and (dist < 1e-12 or cell.size / dist > theta):
                stack.extend(cell.children)
                continue
            if not cell.children:
                # leaf: direct sum over members
                for j in (members if members is not None else []):
                    if j == i:
                        continue
                    d = self.pos[j] - xi
                    r2 = float((d * d).sum())
                    force += self.q[i] * self.q[j] * (-d) / r2 ** 1.5
                continue
            # far field: monopole + dipole + quadrupole about the centroid
            force += self._multipole_force(cell, xi, float(self.q[i]))
        return force

    def _multipole_force(self, cell: _Cell, xi: np.ndarray,
                         qi: float) -> np.ndarray:
        """F = -q_i grad phi for the truncated multipole potential

        phi(x) = Q/r + (p.d)/r^3 + (d^T Qt d)/(2 r^5),   d = x - centroid.
        """
        d = xi - cell.centroid
        r2 = float((d * d).sum())
        r = np.sqrt(r2)
        r3, r5 = r2 * r, r2 * r2 * r
        r7 = r2 * r5
        force = cell.charge * d / r3                       # monopole
        p = cell.dipole
        pd = float(p @ d)
        force += -(p / r3 - 3.0 * pd * d / r5)             # dipole
        qd = cell.quadrupole @ d
        dqd = float(d @ qd)
        force += -(qd / r5 - 2.5 * dqd * d / r7)           # quadrupole
        return qi * force


def tree_forces(pos: np.ndarray, q: np.ndarray, theta: float = 0.5,
                leaf_size: int = 8) -> np.ndarray:
    """Barnes-Hut forces on all particles (multiplied by q_i)."""
    tree = Octree(pos, q, leaf_size)
    out = np.empty_like(pos)
    for i in range(len(pos)):
        out[i] = tree.force_at(i, theta) * 1.0
    return out
