"""Read alignment and SNP pileup (executable).

Miniature of the NGS Analyzer pipeline stages:

* :func:`smith_waterman` — local alignment score by dynamic programming
  (vectorized over anti-diagonal-free column sweeps in NumPy; validated
  against a reference triple-loop implementation);
* :func:`align_reads` — best-hit alignment of reads against a reference
  by seed-and-extend (exact k-mer seed, SW extension);
* :func:`pileup_snps` — per-position base counts and SNP calls from
  aligned reads.

Sequences are small integer arrays (A=0, C=1, G=2, T=3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

BASES = 4


def random_sequence(length: int, rng: np.random.Generator) -> np.ndarray:
    if length < 1:
        raise ConfigurationError("sequence length must be positive")
    return rng.integers(0, BASES, size=length, dtype=np.int8)


def mutate(seq: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Copy of ``seq`` with point mutations at the given rate."""
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError("mutation rate must be in [0, 1]")
    out = seq.copy()
    mask = rng.random(len(seq)) < rate
    out[mask] = (out[mask] + rng.integers(1, BASES, size=int(mask.sum()))) % BASES
    return out


def smith_waterman(
    a: np.ndarray,
    b: np.ndarray,
    match: int = 2,
    mismatch: int = -1,
    gap: int = -2,
) -> int:
    """Local-alignment score (linear gap), NumPy column-sweep DP."""
    if a.ndim != 1 or b.ndim != 1:
        raise ConfigurationError("sequences must be 1D")
    prev = np.zeros(len(b) + 1, dtype=np.int64)
    best = 0
    for ai in a:
        sub = np.where(b == ai, match, mismatch)
        diag = prev[:-1] + sub
        cur = np.zeros_like(prev)
        # H[i][j] = max(0, diag, up, left); 'left' forces a scan because of
        # the in-row dependency — resolved with a running maximum
        up = prev[1:] + gap
        cand = np.maximum(np.maximum(diag, up), 0)
        running = 0
        curv = cur[1:]
        for j in range(len(b)):
            running = max(cand[j], running + gap)
            curv[j] = running
        best = max(best, int(curv.max(initial=0)))
        prev = cur
    return best


def smith_waterman_reference(a, b, match=2, mismatch=-1, gap=-2) -> int:
    """Textbook O(nm) triple-branch implementation (test oracle)."""
    n, m = len(a), len(b)
    h = np.zeros((n + 1, m + 1), dtype=np.int64)
    best = 0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            h[i, j] = max(0, h[i - 1, j - 1] + s, h[i - 1, j] + gap,
                          h[i, j - 1] + gap)
            best = max(best, h[i, j])
    return int(best)


def _kmer_index(ref: np.ndarray, k: int) -> dict[tuple, list[int]]:
    index: dict[tuple, list[int]] = {}
    for pos in range(len(ref) - k + 1):
        index.setdefault(tuple(ref[pos:pos + k].tolist()), []).append(pos)
    return index


def align_reads(
    ref: np.ndarray,
    reads: list[np.ndarray],
    k: int = 11,
    window: int = 8,
) -> list[tuple[int, int]]:
    """Seed-and-extend alignment: returns (position, score) per read.

    Position is -1 when no seed matches.  The extension scores the read
    against the reference window around each seed with Smith-Waterman and
    keeps the best.
    """
    if k < 4:
        raise ConfigurationError("seed length too short")
    index = _kmer_index(ref, k)
    out: list[tuple[int, int]] = []
    for read in reads:
        if len(read) < k:
            out.append((-1, 0))
            continue
        seed = tuple(read[:k].tolist())
        best_pos, best_score = -1, 0
        for pos in index.get(seed, []):
            lo = max(0, pos - window)
            hi = min(len(ref), pos + len(read) + window)
            score = smith_waterman(read, ref[lo:hi])
            if score > best_score:
                best_pos, best_score = pos, score
        out.append((best_pos, best_score))
    return out


def phred_to_error_probability(quality: np.ndarray) -> np.ndarray:
    """Phred score Q -> base-call error probability 10^(-Q/10)."""
    if np.any(quality < 0):
        raise ConfigurationError("Phred scores must be non-negative")
    return np.power(10.0, -np.asarray(quality, dtype=float) / 10.0)


def pileup_snps_quality(
    ref: np.ndarray,
    reads: list[np.ndarray],
    qualities: list[np.ndarray],
    positions: list[int],
    min_weight: float = 3.0,
    min_fraction: float = 0.7,
) -> list[tuple[int, int]]:
    """Quality-weighted SNP calls (the production caller's behaviour).

    Each base contributes ``1 - p_error`` of weight to its pileup cell,
    so low-quality mismatches cannot trigger calls.  Thresholds are in
    weight units (a weight of 3.0 ~ three confident bases).
    """
    counts = np.zeros((len(ref), BASES), dtype=float)
    for read, qual, pos in zip(reads, qualities, positions):
        if pos < 0:
            continue
        if len(qual) != len(read):
            raise ConfigurationError("quality/read length mismatch")
        end = min(len(ref), pos + len(read))
        span = end - pos
        if span <= 0:
            continue
        weight = 1.0 - phred_to_error_probability(qual[:span])
        np.add.at(counts, (np.arange(pos, end), read[:span]), weight)
    snps: list[tuple[int, int]] = []
    depth = counts.sum(axis=1)
    for site in np.nonzero(depth >= min_weight)[0]:
        alt = int(np.argmax(counts[site]))
        if alt != int(ref[site]) and \
                counts[site, alt] >= min_fraction * depth[site]:
            snps.append((int(site), alt))
    return snps


def pileup_snps(
    ref: np.ndarray,
    reads: list[np.ndarray],
    positions: list[int],
    min_depth: int = 3,
    min_fraction: float = 0.7,
) -> list[tuple[int, int]]:
    """SNP calls from aligned reads: (position, alternate base) pairs.

    A site is called when coverage >= ``min_depth`` and a non-reference
    base accounts for >= ``min_fraction`` of the pileup.
    """
    counts = np.zeros((len(ref), BASES), dtype=np.int64)
    for read, pos in zip(reads, positions):
        if pos < 0:
            continue
        end = min(len(ref), pos + len(read))
        span = end - pos
        if span <= 0:
            continue
        np.add.at(counts, (np.arange(pos, end), read[:span]), 1)
    snps: list[tuple[int, int]] = []
    depth = counts.sum(axis=1)
    for site in np.nonzero(depth >= min_depth)[0]:
        alt = int(np.argmax(counts[site]))
        if alt != int(ref[site]) and \
                counts[site, alt] >= min_fraction * depth[site]:
            snps.append((int(site), alt))
    return snps
