"""Performance skeleton of NGSA-mini.

Master-worker pipeline:

* rank 0 scatters read chunks (``Scatter`` of the per-rank share of the
  FASTQ payload);
* every rank aligns its reads — the integer DP kernel (per read:
  ``read_len x window`` DP cells of compares/max/lookup) and sorts/indexes
  them (integer compare kernel);
* a pileup/SNP pass over the local alignments;
* results are gathered at rank 0 (``Gather``).

Essentially zero floating point -> on the A64FX the weak scalar engine is
the bottleneck as-is; with aggressive scheduling the byte-SIMD DP recovers
a 2-3x, but Xeon's strong scalar core remains ahead — the paper's "A64FX
shows poor performance for some applications" case.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.kernels.kernel import LoopKernel
from repro.miniapps import decomp
from repro.miniapps.base import Dataset, MiniApp
from repro.runtime.program import Compute, FileRead, FileWrite, Gather, Scatter
from repro.units import KIB, MIB


class Ngsa(MiniApp):
    name = "ngsa"
    full_name = "NGSA-MINI (NGS Analyzer)"
    description = ("Genome resequencing pipeline: read alignment + SNP "
                   "detection; integer/branch dominated")
    character = "integer"

    def make_datasets(self) -> list[Dataset]:
        return [
            Dataset("as-is", "200k reads x 100 bp against a 1 Mbp reference",
                    {"reads": 200_000, "read_len": 100, "ref_len": 1_000_000,
                     "dp_window": 32}),
            Dataset("large", "2M reads x 150 bp against a 16 Mbp reference",
                    {"reads": 2_000_000, "read_len": 150,
                     "ref_len": 16_000_000, "dp_window": 48}),
        ]

    # ------------------------------------------------------------------
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        # One iteration = one DP cell: compare, 3-way max, score update.
        align = LoopKernel(
            name="ngsa-align",
            flops=0.25,
            fma_fraction=0.0,
            bytes_load=10.0,
            bytes_store=2.0,
            working_set_bytes=64.0 * KIB,     # DP rows + seed table slice
            streaming_fraction=0.4,
            vec_fraction=0.05,
            ilp=2.0,
            contiguous_fraction=0.75,
            int_ops=16.0,
            int_vectorizable=True,            # byte-SIMD DP is possible
        )
        # One iteration = one pileup base: lookup + counter increment.
        pileup = LoopKernel(
            name="ngsa-pileup",
            flops=0.1,
            fma_fraction=0.0,
            bytes_load=8.0,
            bytes_store=4.0,
            working_set_bytes=4.0 * MIB,      # counter array slice
            streaming_fraction=0.6,
            vec_fraction=0.05,
            ilp=2.5,
            contiguous_fraction=0.5,          # scatter increments
            int_ops=8.0,
            int_vectorizable=False,           # histogram conflicts
        )
        # One iteration = one compare-exchange of the alignment sort.
        sort = LoopKernel(
            name="ngsa-sort",
            flops=0.05,
            fma_fraction=0.0,
            bytes_load=16.0,
            bytes_store=8.0,
            working_set_bytes=8.0 * MIB,
            streaming_fraction=0.5,
            vec_fraction=0.1,
            ilp=3.0,
            contiguous_fraction=0.6,
            int_ops=6.0,
            int_vectorizable=False,
        )
        return {"ngsa-align": align, "ngsa-pileup": pileup, "ngsa-sort": sort}

    # ------------------------------------------------------------------
    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     b) -> None:
        """Closed form of ``make_program`` (checked against replay)."""
        reads = dataset["reads"]
        read_len = dataset["read_len"]
        window = dataset["dp_window"]
        my_reads = decomp.split_1d(reads, n_ranks, rank)
        if rank == 0:
            b.file_read(reads * read_len)
        if n_ranks > 1:
            b.collective("scatter",
                         (reads // max(1, n_ranks)) * read_len)
        b.compute("ngsa-align", my_reads * read_len * window,
                  schedule="dynamic", imbalance=1.4)
        b.compute("ngsa-sort",
                  my_reads * max(1, my_reads).bit_length())
        b.compute("ngsa-pileup", my_reads * read_len)
        if n_ranks > 1:
            b.collective("gather", my_reads * 16)
        if rank == 0:
            b.compute("ngsa-sort", reads * 0.05, serial=True)
            b.file_write(reads * 16)

    # ------------------------------------------------------------------
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        reads = dataset["reads"]
        read_len = dataset["read_len"]
        window = dataset["dp_window"]

        def program(rank: int, size: int) -> Iterator:
            my_reads = decomp.split_1d(reads, size, rank)
            chunk_bytes = (reads // max(1, size)) * read_len  # ~1 B/base
            if rank == 0:
                # the FASTQ input comes off the parallel filesystem
                yield FileRead(size_bytes=reads * read_len)
            if size > 1:
                yield Scatter(size_bytes=chunk_bytes, root=0)
            dp_cells = my_reads * read_len * window
            # alignment lengths vary per read batch
            yield Compute("ngsa-align", iters=dp_cells,
                          schedule="dynamic", imbalance=1.4)
            yield Compute("ngsa-sort",
                          iters=my_reads * max(1, my_reads).bit_length())
            yield Compute("ngsa-pileup", iters=my_reads * read_len)
            if size > 1:
                yield Gather(size_bytes=my_reads * 16, root=0)
            if rank == 0:
                # rank 0 merges/writes the result files serially
                yield Compute("ngsa-sort", iters=reads * 0.05, serial=True)
                yield FileWrite(size_bytes=reads * 16)

        return program
