"""NGSA-MINI (NGS Analyzer): next-generation genome sequencing analysis.

A data-analysis pipeline — read alignment (Smith-Waterman class dynamic
programming) and SNP detection over pileups — dominated by integer
compares, table lookups and branches with almost no floating point.  The
suite's classic "poor as-is on A64FX" case: the weak scalar engine loses to
Xeon until the compiler's byte-SIMD vectorization is coaxed into action.
"""

from repro.miniapps.ngsa.skeleton import Ngsa

__all__ = ["Ngsa"]
