"""Performance skeleton of FFVC-mini.

Per timestep (matching :mod:`physics`):

* one advection-diffusion pass over 3 velocity fields (upwind + Laplacian,
  ~60 FLOPs/cell);
* ``sor_sweeps`` red-black SOR sweeps of the 7-point pressure stencil,
  each followed by a residual ``Allreduce(8 B)``;
* divergence + projection passes;
* a 6-face halo exchange per stencil family (3D Cartesian decomposition).

The SOR loop makes FFVC the suite's purest memory-bandwidth workload — the
case where A64FX's HBM2 dominates the comparison processors.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.kernels.kernel import LoopKernel
from repro.miniapps import decomp
from repro.miniapps.base import Dataset, MiniApp
from repro.runtime.program import Allreduce, Compute, Irecv, Isend, WaitAll
from repro.units import FP64_BYTES


class Ffvc(MiniApp):
    name = "ffvc"
    full_name = "FFVC-MINI (FFV-C: Frontflow/violet Cartesian)"
    description = ("3D unsteady incompressible thermal flow, voxel FVM; "
                   "pressure-Poisson SOR sweeps dominate")
    character = "memory"

    def make_datasets(self) -> list[Dataset]:
        return [
            Dataset("as-is", "64^3 cavity, 3 steps, ~30 SOR sweeps/step",
                    {"grid": (64, 64, 64), "steps": 3, "sor_sweeps": 30}),
            Dataset("large", "256^3 cavity, 5 steps, ~50 SOR sweeps/step",
                    {"grid": (256, 256, 256), "steps": 5, "sor_sweeps": 50}),
        ]

    def weak_dataset(self, factor: int) -> Dataset:
        """Grow the large grid's z-extent by ``factor`` (constant work per
        rank when ranks grow with the factor)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        nx, ny, nz = self.dataset("large")["grid"]
        ds = Dataset(
            f"weak-x{factor}",
            f"{nx}x{ny}x{nz * factor} cavity (weak-scaled x{factor})",
            {"grid": (nx, ny, nz * factor),
             "steps": self.dataset("large")["steps"],
             "sor_sweeps": self.dataset("large")["sor_sweeps"]},
        )
        self.register_dataset(ds)
        return ds

    # ------------------------------------------------------------------
    def kernels(self, dataset: Dataset) -> dict[str, LoopKernel]:
        nx, ny, nz = dataset["grid"]
        plane = nx * ny * FP64_BYTES
        sor = LoopKernel(
            name="ffvc-sor",
            flops=14.0,                   # 7-pt stencil + relaxation update
            fma_fraction=0.85,
            bytes_load=2 * FP64_BYTES,    # p re-read + rhs (planes reused)
            bytes_store=FP64_BYTES,
            working_set_bytes=3.0 * plane,
            streaming_fraction=0.6,
            vec_fraction=1.0,
            ilp=6.0,
            contiguous_fraction=0.97,
        )
        advect = LoopKernel(
            name="ffvc-advect",
            flops=60.0,                   # upwind advection + diffusion, 3 fields
            fma_fraction=0.7,
            bytes_load=6 * FP64_BYTES,
            bytes_store=3 * FP64_BYTES,
            working_set_bytes=9.0 * plane,
            streaming_fraction=0.5,
            vec_fraction=0.9,             # upwind selects introduce predication
            ilp=7.0,
            contiguous_fraction=0.95,
        )
        project = LoopKernel(
            name="ffvc-project",
            flops=18.0,                   # div + grad + velocity correction
            fma_fraction=0.8,
            bytes_load=5 * FP64_BYTES,
            bytes_store=3 * FP64_BYTES,
            working_set_bytes=4.0 * plane,
            streaming_fraction=0.7,
            vec_fraction=1.0,
            ilp=8.0,
        )
        return {"ffvc-sor": sor, "ffvc-advect": advect, "ffvc-project": project}

    # ------------------------------------------------------------------
    def rank_summary(self, dataset: Dataset, n_ranks: int, rank: int,
                     b) -> None:
        """Closed form of ``make_program`` (checked against replay)."""
        grid = dataset["grid"]
        steps = dataset["steps"]
        sweeps = dataset["sor_sweeps"]
        pgrid = decomp.best_factor3(n_ranks, grid)
        coords = decomp.rank_to_coords3(rank, pgrid)
        local = decomp.local_box(grid, pgrid, coords)
        cells = local[0] * local[1] * local[2]
        nbrs = decomp.neighbors3(rank, pgrid)
        halos = decomp.halo_bytes_3d(local, fields=1)
        surface = 2.0 * (local[0] * local[1] + local[1] * local[2]
                         + local[0] * local[2])
        boundary = min(0.9 * cells, surface)
        interior = cells - boundary

        b.compute("ffvc-project", surface * steps, regions=steps,
                  serial=True)
        b.compute("ffvc-advect", cells * steps, regions=steps)
        # divergence rhs + velocity correction
        b.compute("ffvc-project", 2 * cells * steps, regions=2 * steps)
        # interior + boundary halves of every overlapped SOR sweep
        b.compute("ffvc-sor", (interior + boundary) * sweeps * steps,
                  regions=2 * sweeps * steps)
        b.collective("allreduce", 8, count=sweeps * steps)

        partners = []
        for axis in "xyz":
            lo, hi = nbrs[f"{axis}-"], nbrs[f"{axis}+"]
            if lo == rank:        # axis not decomposed
                continue
            partners += [(hi, halos[f"{axis}-"]), (lo, halos[f"{axis}-"])]
        if partners:
            b.exchange(rank, [(d, 3 * n) for d, n in partners], count=steps)
            b.exchange(rank, partners, count=steps)
            b.exchange(rank, partners, overlapped=True,
                       count=sweeps * steps)

    # ------------------------------------------------------------------
    def make_program(self, dataset: Dataset,
                     n_ranks: int) -> Callable[[int, int], Iterator]:
        grid = dataset["grid"]
        steps = dataset["steps"]
        sweeps = dataset["sor_sweeps"]
        pgrid = decomp.best_factor3(n_ranks, grid)

        def program(rank: int, size: int) -> Iterator:
            coords = decomp.rank_to_coords3(rank, pgrid)
            local = decomp.local_box(grid, pgrid, coords)
            cells = local[0] * local[1] * local[2]
            nbrs = decomp.neighbors3(rank, pgrid)
            halos = decomp.halo_bytes_3d(local, fields=1)

            def halo_begin(fields: int):
                reqs = []
                tag = 0
                for axis in "xyz":
                    lo, hi = nbrs[f"{axis}-"], nbrs[f"{axis}+"]
                    if lo == rank:        # axis not decomposed
                        continue
                    nbytes = halos[f"{axis}-"] * fields
                    reqs.append((yield Irecv(src=lo, tag=tag)))
                    reqs.append((yield Irecv(src=hi, tag=tag + 1)))
                    yield Isend(dst=hi, tag=tag, size_bytes=nbytes)
                    yield Isend(dst=lo, tag=tag + 1, size_bytes=nbytes)
                    tag += 2
                return reqs

            def halo_exchange(fields: int):
                reqs = yield from halo_begin(fields)
                if reqs:
                    yield WaitAll(reqs)

            # interior/boundary split for comm-overlapped sweeps
            surface = 2.0 * (local[0] * local[1] + local[1] * local[2]
                             + local[0] * local[2])
            boundary_cells = min(0.9 * cells, surface)
            interior_cells = cells - boundary_cells

            def sor_overlapped():
                """One SOR sweep with the halo hidden under the interior."""
                reqs = yield from halo_begin(1)
                yield Compute("ffvc-sor", iters=interior_cells)
                if reqs:
                    yield WaitAll(reqs)
                yield Compute("ffvc-sor", iters=boundary_cells)

            for _ in range(steps):
                # serial boundary-condition application on the outer faces
                # (~ the surface cells, master thread only)
                yield Compute("ffvc-project", iters=surface, serial=True)
                yield from halo_exchange(fields=3)
                yield Compute("ffvc-advect", iters=cells)
                yield Compute("ffvc-project", iters=cells)   # divergence rhs
                for _ in range(sweeps):
                    yield from sor_overlapped()
                    yield Allreduce(size_bytes=8)
                yield from halo_exchange(fields=1)
                yield Compute("ffvc-project", iters=cells)   # velocity correction

        return program
