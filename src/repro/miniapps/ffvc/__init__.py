"""FFVC-MINI: 3D unsteady incompressible thermal flow (voxel FVM).

The dominant cost is the pressure-Poisson iteration (7-point stencil
sweeps); :mod:`physics` implements the fractional-step method with an
SOR Poisson solver, :mod:`skeleton` carries the stencil/halo signature.
"""

from repro.miniapps.ffvc.skeleton import Ffvc

__all__ = ["Ffvc"]
