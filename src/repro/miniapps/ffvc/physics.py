"""Fractional-step incompressible flow on a voxel grid (executable).

The miniature of FFVC-mini's numerical core:

* explicit advection-diffusion of the velocity field (first-order upwind +
  central diffusion),
* a pressure-Poisson solve with red-black SOR (the benchmark's hot loop),
* divergence-free projection.

Fields are cell-centred on a periodic ``n^3`` voxel grid (FFVC's masked
solid cells are omitted — they change boundary handling, not the loop
structure the performance model times).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def divergence(u: np.ndarray, v: np.ndarray, w: np.ndarray, h: float) -> np.ndarray:
    """Backward-difference divergence (staggered-compatible).

    Paired with the forward-difference :func:`gradient`, the composition
    ``div(grad p)`` is exactly the compact 7-point :func:`laplacian`, so
    the pressure projection removes the discrete divergence to the
    Poisson solver's tolerance (no collocated checkerboard decoupling).
    """
    return (
        (u - np.roll(u, 1, 0))
        + (v - np.roll(v, 1, 1))
        + (w - np.roll(w, 1, 2))
    ) / h


def gradient(p: np.ndarray, h: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Forward-difference gradient (adjoint of :func:`divergence`)."""
    gx = (np.roll(p, -1, 0) - p) / h
    gy = (np.roll(p, -1, 1) - p) / h
    gz = (np.roll(p, -1, 2) - p) / h
    return gx, gy, gz


def laplacian(f: np.ndarray, h: float) -> np.ndarray:
    """7-point Laplacian of a periodic scalar field."""
    out = -6.0 * f
    for axis in range(3):
        out += np.roll(f, 1, axis) + np.roll(f, -1, axis)
    return out / (h * h)


def _rb_masks(shape: tuple[int, int, int]) -> tuple[np.ndarray, np.ndarray]:
    idx = np.add.outer(
        np.add.outer(np.arange(shape[0]), np.arange(shape[1])),
        np.arange(shape[2]),
    )
    red = (idx % 2) == 0
    return red, ~red


def solve_poisson_sor(
    rhs: np.ndarray,
    h: float,
    omega: float = 1.5,
    tol: float = 1e-8,
    max_sweeps: int = 5000,
) -> tuple[np.ndarray, int, float]:
    """Solve ``lap(p) = rhs`` (periodic) with red-black SOR.

    The right-hand side is projected to zero mean (the periodic Poisson
    problem is only solvable up to that compatibility condition, and the
    solution is fixed by giving ``p`` zero mean too).
    Returns (p, sweeps, final residual norm).
    """
    if rhs.ndim != 3:
        raise ConfigurationError("rhs must be a 3D field")
    if not 0.0 < omega < 2.0:
        raise ConfigurationError("SOR omega must be in (0, 2)")
    rhs = rhs - rhs.mean()
    p = np.zeros_like(rhs)
    red, black = _rb_masks(rhs.shape)
    h2 = h * h
    rhs_norm = float(np.linalg.norm(rhs)) or 1.0
    res = float("inf")
    for sweep in range(1, max_sweeps + 1):
        for mask in (red, black):
            nb = (
                np.roll(p, 1, 0) + np.roll(p, -1, 0)
                + np.roll(p, 1, 1) + np.roll(p, -1, 1)
                + np.roll(p, 1, 2) + np.roll(p, -1, 2)
            )
            gs = (nb - h2 * rhs) / 6.0
            p[mask] += omega * (gs[mask] - p[mask])
        p -= p.mean()
        res = float(np.linalg.norm(laplacian(p, h) - rhs)) / rhs_norm
        if res < tol:
            return p, sweep, res
    return p, max_sweeps, res


def step(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    dt: float,
    h: float,
    nu: float,
    sor_tol: float = 1e-7,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """One fractional-step update; returns (u, v, w, p, sor_sweeps)."""
    if dt <= 0 or h <= 0 or nu < 0:
        raise ConfigurationError("bad timestep parameters")

    def advect_diffuse(f: np.ndarray) -> np.ndarray:
        # first-order upwind advection + central diffusion
        adv = np.zeros_like(f)
        for vel, axis in ((u, 0), (v, 1), (w, 2)):
            fwd = (np.roll(f, -1, axis) - f) / h
            bwd = (f - np.roll(f, 1, axis)) / h
            adv += np.where(vel > 0, vel * bwd, vel * fwd)
        return f + dt * (-adv + nu * laplacian(f, h))

    us, vs, ws = advect_diffuse(u), advect_diffuse(v), advect_diffuse(w)
    div = divergence(us, vs, ws, h)
    p, sweeps, _ = solve_poisson_sor(div / dt, h, tol=sor_tol)
    gx, gy, gz = gradient(p, h)
    return us - dt * gx, vs - dt * gy, ws - dt * gz, p, sweeps


def step_thermal(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    temp: np.ndarray,
    dt: float,
    h: float,
    nu: float,
    kappa_t: float,
    buoyancy: float = 0.0,
    t_ref: float = 0.0,
    sor_tol: float = 1e-7,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """One thermal (Boussinesq) fractional step.

    Advects and diffuses the temperature with the velocity field, applies
    the buoyancy force ``g beta (T - T_ref)`` to the vertical (z) momentum,
    then projects as in :func:`step`.  Returns
    ``(u, v, w, temp, p, sor_sweeps)``.
    """
    if kappa_t < 0:
        raise ConfigurationError("thermal diffusivity must be non-negative")

    def advect_diffuse(f: np.ndarray, diffusivity: float) -> np.ndarray:
        adv = np.zeros_like(f)
        for vel, axis in ((u, 0), (v, 1), (w, 2)):
            fwd = (np.roll(f, -1, axis) - f) / h
            bwd = (f - np.roll(f, 1, axis)) / h
            adv += np.where(vel > 0, vel * bwd, vel * fwd)
        return f + dt * (-adv + diffusivity * laplacian(f, h))

    new_temp = advect_diffuse(temp, kappa_t)
    us = advect_diffuse(u, nu)
    vs = advect_diffuse(v, nu)
    ws = advect_diffuse(w, nu) + dt * buoyancy * (new_temp - t_ref)
    div = divergence(us, vs, ws, h)
    p, sweeps, _ = solve_poisson_sor(div / dt, h, tol=sor_tol)
    gx, gy, gz = gradient(p, h)
    return (us - dt * gx, vs - dt * gy, ws - dt * gz, new_temp, p, sweeps)


def taylor_green(n: int, h: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Divergence-free Taylor-Green initial condition on an ``n^3`` grid."""
    x = (np.arange(n) + 0.5) * h
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    u = np.sin(X) * np.cos(Y) * np.cos(Z)
    v = -np.cos(X) * np.sin(Y) * np.cos(Z)
    w = np.zeros_like(u)
    return u, v, w
