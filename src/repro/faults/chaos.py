"""Chaos campaigns: replay fault plans across the miniapp catalog and
assert resilience invariants.

``repro chaos`` runs, per miniapp, a deterministic scenario ladder —
baseline, straggler severity sweep, message delay, message duplication,
rank crash, message drop — every scenario **twice**, and checks:

* **deterministic-replay** — the same :class:`~repro.faults.FaultPlan`
  seed produces bit-identical elapsed times, per-rank finish times, and
  PMU counter totals on both runs;
* **lint-agreement** — deadlock-freedom under *lossless* faults (delay,
  duplicate, straggler) matches the static analyzer's verdict: a program
  the analyzer proves deadlock-free must still complete;
* **conservation** — per-rank attributed time (regions + waits) equals
  the rank's finish time, and counter-summed flops equal the executor's
  totals, under every injected fault;
* **monotone-degradation** — elapsed time is non-decreasing in straggler
  severity and never below the fault-free baseline;
* **degradation-accounting** — lossy faults (crash, drop) degrade the
  run into recorded ``failed_ranks``/``stalled_ranks`` instead of
  raising, and only when a lossy fault actually fired.

The outcome is a JSON artifact (:meth:`ChaosReport.to_json`) that is
itself bit-reproducible for a given seed — CI diffs it as a smoke gate.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.faults.plan import CrashRank, FaultPlan, MessageFault, Straggler

#: Apps exercised by ``--quick`` (one halo-exchange CFD code, one
#: collective-heavy QMC code — the two p2p/collective extremes).
QUICK_APPS = ("ffvc", "mvmc")

#: Straggler severity ladder (monotone-degradation axis).
SEVERITIES = (1.4, 1.9, 2.6)

#: Relative slack for >=-comparisons between simulated times.
_REL_EPS = 1e-9


@dataclass(frozen=True)
class Invariant:
    """One checked property of one scenario."""

    id: str
    app: str
    scenario: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"id": self.id, "app": self.app, "scenario": self.scenario,
                "ok": self.ok, "detail": self.detail}


@dataclass
class ChaosReport:
    """The campaign artifact: scenario outcomes plus invariant verdicts."""

    seed: int
    processor: str
    apps: list[str]
    scenarios: list[dict] = field(default_factory=list)
    invariants: list[Invariant] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    @property
    def violations(self) -> list[Invariant]:
        return [inv for inv in self.invariants if not inv.ok]

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 1,
            "seed": self.seed,
            "processor": self.processor,
            "apps": list(self.apps),
            "ok": self.ok,
            "scenarios": list(self.scenarios),
            "invariants": [inv.to_dict() for inv in self.invariants],
        }

    def render(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed} processor={self.processor} "
            f"apps={','.join(self.apps)}",
            f"  {len(self.scenarios)} scenario runs, "
            f"{len(self.invariants)} invariants checked",
        ]
        for inv in self.invariants:
            if not inv.ok:
                lines.append(f"  VIOLATION {inv.app}/{inv.scenario} "
                             f"[{inv.id}]: {inv.detail}")
        lines.append("  all invariants hold" if self.ok
                     else f"  {len(self.violations)} violation(s)")
        return "\n".join(lines)


def _signature(result, profile) -> dict[str, Any]:
    """Bit-stable fingerprint of one run (the determinism invariant)."""
    total = profile.total_counters()
    stats = result.fault_stats
    return {
        "elapsed": result.elapsed,
        "rank_finish": {str(r): t
                        for r, t in sorted(result.rank_finish.items())},
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
        "total_flops": result.total_flops,
        "counter_flops": total.flops,
        "counter_cycles": total.cycles,
        "failed_ranks": list(result.failed_ranks),
        "stalled_ranks": list(result.stalled_ranks),
        "fault_stats": None if stats is None else stats.to_dict(),
    }


def _run_profiled(job, plan: FaultPlan | None):
    """Run ``job`` under ``plan`` with the PMU attached."""
    from repro.perf.profile import ProfileSink
    from repro.runtime.executor import run_job

    sink = ProfileSink()
    result = run_job(dataclasses.replace(job, perf_sink=sink,
                                         fault_plan=plan))
    return result, sink.profile()


class _Campaign:
    """One app's scenario ladder against one job."""

    def __init__(self, report: ChaosReport, app: str, job) -> None:
        self.report = report
        self.app = app
        self.job = job

    def check(self, scenario: str, inv_id: str, ok: bool,
              detail: str = "") -> None:
        self.report.invariants.append(
            Invariant(id=inv_id, app=self.app, scenario=scenario,
                      ok=ok, detail=detail))

    def run(self, scenario: str, plan: FaultPlan | None):
        """Run twice, record the scenario, enforce the universal
        invariants (replay determinism + conservation); returns the
        first run's (result, profile), or (None, None) on error."""
        try:
            result, profile = _run_profiled(self.job, plan)
            replay, _ = _run_profiled(self.job, plan)
        except ReproError as exc:
            self.report.scenarios.append({
                "app": self.app, "scenario": scenario,
                "plan": None if plan is None else plan.to_dict(),
                "error": f"{type(exc).__name__}: {exc}",
            })
            return None, None
        sig = _signature(result, profile)
        self.report.scenarios.append({
            "app": self.app, "scenario": scenario,
            "plan": None if plan is None else plan.to_dict(),
            **sig,
        })
        self.check(scenario, "deterministic-replay",
                   sig["elapsed"] == replay.elapsed
                   and sig["rank_finish"] == {
                       str(r): t
                       for r, t in sorted(replay.rank_finish.items())}
                   and sig["messages_sent"] == replay.messages_sent
                   and sig["bytes_sent"] == replay.bytes_sent
                   and sig["failed_ranks"] == list(replay.failed_ranks)
                   and sig["stalled_ranks"] == list(replay.stalled_ranks),
                   detail=f"elapsed {sig['elapsed']!r} vs "
                          f"{replay.elapsed!r}")
        self._check_conservation(scenario, result, profile)
        return result, profile

    def _check_conservation(self, scenario: str, result, profile) -> None:
        worst = 0.0
        for rank, finish in result.rank_finish.items():
            attributed = profile.attributed_seconds(rank)
            err = abs(attributed - finish) / max(finish, 1e-30)
            worst = max(worst, err)
        self.check(scenario, "time-conservation", worst < 1e-6,
                   detail=f"max per-rank attribution error {worst:.2e}")
        flops = profile.total_counters().flops
        err = abs(flops - result.total_flops) / max(result.total_flops, 1.0)
        self.check(scenario, "flop-conservation", err < 1e-6,
                   detail=f"counter {flops:.6g} vs executor "
                          f"{result.total_flops:.6g}")


def _lint_verdict(job) -> bool:
    """True when the static analyzer proves the program deadlock-free."""
    from repro.analysis import analyze_job

    return analyze_job(job).ok


def run_campaign(seed: int = 0, *, apps: tuple[str, ...] | None = None,
                 quick: bool = False, processor: str = "A64FX",
                 n_ranks: int = 4, n_threads: int = 2,
                 engine: str = "event") -> ChaosReport:
    """Run the chaos scenario ladder and return the report.

    Fault injection is event-level dynamics by definition, so only
    ``engine="event"`` is meaningful; any other value raises
    :class:`~repro.errors.ConfigurationError` rather than silently
    ignoring the fault plans (mirrors ``run_config``'s guard).
    """
    from repro.compile.options import PRESETS
    from repro.machine import catalog
    from repro.miniapps import SUITE, by_name
    from repro.runtime.placement import JobPlacement

    if engine != "event":
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"engine={engine!r} cannot inject faults: chaos campaigns "
            f"need the event executor; drop --engine or use "
            f"--engine event"
        )

    if apps is None:
        apps = QUICK_APPS if quick else tuple(sorted(SUITE))
    report = ChaosReport(seed=seed, processor=processor, apps=list(apps))
    cluster = catalog.by_name(processor)

    for app in apps:
        rng = random.Random(f"{seed}:{app}")
        victim = rng.randrange(n_ranks)
        placement = JobPlacement(cluster, n_ranks, n_threads)
        job = by_name(app).build_job(cluster, placement, dataset="as-is",
                                     options=PRESETS["kfast"])
        c = _Campaign(report, app, job)
        lint_ok = _lint_verdict(job)

        # -- baseline -------------------------------------------------
        base, _ = c.run("baseline", None)
        if base is None:
            c.check("baseline", "lint-agreement", not lint_ok,
                    detail="fault-free run failed although the analyzer "
                           "proved the program deadlock-free")
            continue
        c.check("baseline", "lint-agreement", lint_ok,
                detail="fault-free run completed but the analyzer "
                       "flagged the program" if not lint_ok else "")

        # -- straggler severity ladder (monotone degradation) ---------
        prev = base.elapsed
        for severity in SEVERITIES:
            plan = FaultPlan(seed=seed, stragglers=(
                Straggler(rank=victim, factor=severity),))
            res, _ = c.run(f"straggler-{severity}", plan)
            if res is None:
                c.check(f"straggler-{severity}", "lint-agreement", False,
                        detail="lossless fault broke a deadlock-free run")
                continue
            c.check(f"straggler-{severity}", "monotone-degradation",
                    res.elapsed >= prev * (1.0 - _REL_EPS)
                    and res.elapsed >= base.elapsed * (1.0 - _REL_EPS),
                    detail=f"{res.elapsed!r} vs previous {prev!r} "
                           f"(baseline {base.elapsed!r})")
            c.check(f"straggler-{severity}", "lossless-completion",
                    not res.degraded,
                    detail=f"failed={res.failed_ranks} "
                           f"stalled={res.stalled_ranks}")
            prev = res.elapsed

        # -- message delay (lossless: must still complete) ------------
        plan = FaultPlan(seed=seed, message_faults=(
            MessageFault(kind="delay", delay_s=5e-6),))
        res, _ = c.run("delay", plan)
        if res is not None:
            c.check("delay", "lint-agreement",
                    (not lint_ok) or not res.degraded,
                    detail=f"failed={res.failed_ranks} "
                           f"stalled={res.stalled_ranks}")
            c.check("delay", "monotone-degradation",
                    res.elapsed >= base.elapsed * (1.0 - _REL_EPS),
                    detail=f"{res.elapsed!r} vs baseline {base.elapsed!r}")
        else:
            c.check("delay", "lint-agreement", not lint_ok,
                    detail="delay fault deadlocked a run the analyzer "
                           "proved deadlock-free")

        # -- message duplication (lossless, burns bandwidth) ----------
        plan = FaultPlan(seed=seed, message_faults=(
            MessageFault(kind="duplicate", probability=0.5),))
        res, _ = c.run("duplicate", plan)
        if res is not None:
            dups = res.fault_stats.duplicates if res.fault_stats else 0
            c.check("duplicate", "lossless-completion", not res.degraded,
                    detail=f"failed={res.failed_ranks} "
                           f"stalled={res.stalled_ranks}")
            c.check("duplicate", "message-accounting",
                    res.messages_sent == base.messages_sent + dups,
                    detail=f"{res.messages_sent} messages vs baseline "
                           f"{base.messages_sent} + {dups} duplicates")
        else:
            c.check("duplicate", "lint-agreement", not lint_ok,
                    detail="duplicate fault deadlocked a run the "
                           "analyzer proved deadlock-free")

        # -- rank crash (lossy: degrade, never abort) -----------------
        plan = FaultPlan(seed=seed, crashes=(
            CrashRank(rank=victim, at=base.elapsed * 0.35),))
        res, _ = c.run("crash", plan)
        if res is not None:
            c.check("crash", "degradation-accounting",
                    victim in res.failed_ranks,
                    detail=f"rank {victim} not in failed_ranks="
                           f"{res.failed_ranks}")
        else:
            c.check("crash", "degradation-accounting", False,
                    detail="crash scenario raised instead of degrading")

        # -- message drop (lossy with probability) --------------------
        plan = FaultPlan(seed=seed, message_faults=(
            MessageFault(kind="drop", probability=0.25, max_events=3),))
        res, _ = c.run("drop", plan)
        if res is not None:
            drops = res.fault_stats.drops if res.fault_stats else 0
            c.check("drop", "degradation-accounting",
                    drops > 0 or not res.degraded,
                    detail=f"degraded (failed={res.failed_ranks}, "
                           f"stalled={res.stalled_ranks}) although "
                           f"no drop fired")
        else:
            c.check("drop", "degradation-accounting", False,
                    detail="drop scenario raised instead of degrading")

    return report
