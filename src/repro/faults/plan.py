"""Deterministic, seeded fault injection plans.

A :class:`FaultPlan` is a frozen, declarative description of the faults
one simulated run should experience:

* :class:`CrashRank` — a rank dies at a simulated time (it finishes its
  in-flight operation, or is cut short mid-wait, and executes nothing
  afterwards);
* :class:`Straggler` — a rank's compute regions stretch by a factor from
  a start time on, as if its core frequency (and with it every ECM
  resource) dropped — the :meth:`~repro.kernels.timing.PhaseTiming.scaled`
  transform;
* :class:`MessageFault` — point-to-point messages matching a
  (src, dst) filter are dropped, duplicated, or delayed, each with a
  probability drawn from the plan's seeded RNG.

Determinism is the load-bearing property: the event engine fires events
in a reproducible order, every probabilistic decision consumes the
plan's own ``random.Random(seed)`` stream in that order, and the plan
itself is immutable — so the same plan against the same job yields
bit-identical timelines, counters, and fault statistics on every replay.
The mutable per-run half lives in :class:`FaultState` (one per
``run_job``), which also accumulates the :class:`FaultStats` the chaos
campaign asserts invariants over.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, fields
from typing import Any

from repro.errors import ConfigurationError

#: Message-fault kinds, in severity order.
MESSAGE_FAULT_KINDS = ("drop", "duplicate", "delay")


@dataclass(frozen=True)
class CrashRank:
    """Rank ``rank`` executes nothing after simulated time ``at``."""

    rank: int
    at: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"crash rank must be >= 0, got {self.rank}")
        if self.at < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class Straggler:
    """Rank ``rank``'s compute stretches by ``factor`` from ``start`` on."""

    rank: int
    factor: float
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(
                f"straggler rank must be >= 0, got {self.rank}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                f"straggler factor must be >= 1, got {self.factor}"
            )
        if self.start < 0:
            raise ConfigurationError("straggler start must be >= 0")


@dataclass(frozen=True)
class MessageFault:
    """Drop/duplicate/delay messages matching a (src, dst) filter.

    ``src``/``dst`` of ``None`` match any rank.  Each matching delivery
    triggers the fault with probability ``probability`` (decided by the
    plan's seeded RNG, so replays are identical); ``max_events`` bounds
    how many times the fault can fire.  ``delay_s`` is the extra
    in-flight latency for ``kind="delay"``.
    """

    kind: str
    src: int | None = None
    dst: int | None = None
    probability: float = 1.0
    delay_s: float = 0.0
    max_events: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown message-fault kind {self.kind!r}; "
                f"expected one of {MESSAGE_FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be >= 0")
        if self.kind == "delay" and self.delay_s == 0.0:
            raise ConfigurationError("a delay fault needs delay_s > 0")
        if self.max_events is not None and self.max_events < 1:
            raise ConfigurationError("max_events must be >= 1 when given")


@dataclass
class FaultStats:
    """What actually fired during one run (accumulated by FaultState)."""

    crashes: int = 0
    stalled: int = 0           # ranks wedged as collateral of lossy faults
    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    delay_seconds: float = 0.0
    straggled_regions: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative fault campaign for one simulated run.

    Immutable; :meth:`bind` produces the per-run mutable state.  An empty
    plan (no specs) is valid and injects nothing — useful as an explicit
    "chaos off" object.
    """

    seed: int = 0
    crashes: tuple[CrashRank, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    message_faults: tuple[MessageFault, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for c in self.crashes:
            if c.rank in seen:
                raise ConfigurationError(f"rank {c.rank} crashes twice")
            seen.add(c.rank)
        seen = set()
        for s in self.stragglers:
            if s.rank in seen:
                raise ConfigurationError(
                    f"rank {s.rank} has two straggler specs"
                )
            seen.add(s.rank)

    @property
    def empty(self) -> bool:
        return not (self.crashes or self.stragglers or self.message_faults)

    def bind(self) -> "FaultState":
        """Fresh mutable per-run state (one per ``run_job``)."""
        return FaultState(self)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe description (for the chaos report artifact)."""
        return {
            "seed": self.seed,
            "crashes": [{"rank": c.rank, "at": c.at} for c in self.crashes],
            "stragglers": [
                {"rank": s.rank, "factor": s.factor, "start": s.start}
                for s in self.stragglers
            ],
            "message_faults": [
                {
                    "kind": m.kind, "src": m.src, "dst": m.dst,
                    "probability": m.probability, "delay_s": m.delay_s,
                    "max_events": m.max_events,
                }
                for m in self.message_faults
            ],
        }

    def digest(self) -> str:
        """Stable content digest of the plan (hex, 16 chars).

        Recorded in run manifests so two runs can be compared on *what*
        chaos they were subjected to without diffing full plan dumps.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_dict` form.

        Round-trips exactly (same specs, same seed, same digest), which
        is what lets ``repro reproduce`` re-run a recorded chaos
        campaign from the manifest alone.
        """
        try:
            return cls(
                seed=int(data.get("seed", 0)),
                crashes=tuple(
                    CrashRank(rank=int(c["rank"]), at=float(c["at"]))
                    for c in data.get("crashes", ())
                ),
                stragglers=tuple(
                    Straggler(rank=int(s["rank"]),
                              factor=float(s["factor"]),
                              start=float(s.get("start", 0.0)))
                    for s in data.get("stragglers", ())
                ),
                message_faults=tuple(
                    MessageFault(
                        kind=str(m["kind"]),
                        src=m.get("src"),
                        dst=m.get("dst"),
                        probability=float(m.get("probability", 1.0)),
                        delay_s=float(m.get("delay_s", 0.0)),
                        max_events=m.get("max_events"),
                    )
                    for m in data.get("message_faults", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed fault-plan record: {exc}") from exc


class FaultState:
    """Mutable per-run binding of a :class:`FaultPlan`.

    The runtime queries it at three hook points — rank crash scheduling,
    compute timing, and message delivery — and every probabilistic answer
    consumes the seeded RNG in deterministic event order.
    """

    __slots__ = ("plan", "stats", "_rng", "_crash_at", "_straggle",
                 "_msg_faults", "_msg_remaining")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._crash_at = {c.rank: c.at for c in plan.crashes}
        self._straggle = {s.rank: (s.factor, s.start)
                          for s in plan.stragglers}
        self._msg_faults = plan.message_faults
        self._msg_remaining = [
            m.max_events if m.max_events is not None else -1
            for m in plan.message_faults
        ]

    # -- hook: executor crash scheduling --------------------------------
    def crash_time(self, rank: int) -> float | None:
        """When ``rank`` should die, or ``None``."""
        return self._crash_at.get(rank)

    @property
    def lossy(self) -> bool:
        """True when injected faults may legitimately wedge ranks."""
        return bool(self.stats.crashes or self.stats.drops)

    # -- hook: compute timing -------------------------------------------
    def compute_factor(self, rank: int, now: float) -> float:
        """Multiplier on ``rank``'s compute timings at simulated ``now``."""
        spec = self._straggle.get(rank)
        if spec is None:
            return 1.0
        factor, start = spec
        if now < start:
            return 1.0
        self.stats.straggled_regions += 1
        return factor

    # -- hook: message delivery -----------------------------------------
    def message_action(self, src: int, dst: int,
                       size: float) -> tuple[str, float] | None:
        """Fault decision for one delivery: ``(kind, delay_s)`` or None.

        The first matching spec that fires wins.  Every *matching* spec
        with probability < 1 consumes one RNG draw whether or not it
        fires, keeping the stream alignment independent of the draw
        outcomes themselves.
        """
        for i, m in enumerate(self._msg_faults):
            if m.src is not None and m.src != src:
                continue
            if m.dst is not None and m.dst != dst:
                continue
            if self._msg_remaining[i] == 0:
                continue
            if m.probability < 1.0 and self._rng.random() >= m.probability:
                continue
            if self._msg_remaining[i] > 0:
                self._msg_remaining[i] -= 1
            if m.kind == "drop":
                self.stats.drops += 1
            elif m.kind == "duplicate":
                self.stats.duplicates += 1
            else:
                self.stats.delays += 1
                self.stats.delay_seconds += m.delay_s
            return m.kind, m.delay_s
        return None
