"""Deterministic fault injection and chaos campaigns.

Two halves:

* :mod:`~repro.faults.plan` — the declarative, seeded
  :class:`FaultPlan` (rank crashes, stragglers, message
  drop/duplicate/delay) that :class:`~repro.runtime.executor.Job`
  carries via ``fault_plan=`` and the runtime replays deterministically;
* :mod:`~repro.faults.chaos` — the ``repro chaos`` campaign runner that
  sweeps fault scenarios across the miniapp catalog and asserts
  resilience invariants (replay determinism, counter conservation,
  monotone degradation, analyzer agreement) into a JSON artifact;
* :mod:`~repro.faults.service` — the ``repro chaos --service``
  crash-consistency campaign for the sweep service (torn ledger
  writes, kills at journaled transitions, torn frames, hung workers,
  lapsed deadlines), asserting that no accepted job is ever lost or
  duplicated across crash and restart.

Injection is off by default (``Job.fault_plan is None``) and each
runtime hook point costs a single ``is not None`` predicate when off —
the same contract as the PMU sink.
"""

from repro.faults.chaos import ChaosReport, Invariant, run_campaign
from repro.faults.plan import (
    MESSAGE_FAULT_KINDS,
    CrashRank,
    FaultPlan,
    FaultState,
    FaultStats,
    MessageFault,
    Straggler,
)
from repro.faults.service import (
    ServiceChaosReport,
    SimulatedKill,
    run_service_campaign,
)

__all__ = [
    "MESSAGE_FAULT_KINDS",
    "ChaosReport",
    "CrashRank",
    "FaultPlan",
    "FaultState",
    "FaultStats",
    "Invariant",
    "MessageFault",
    "ServiceChaosReport",
    "SimulatedKill",
    "Straggler",
    "run_campaign",
    "run_service_campaign",
]
