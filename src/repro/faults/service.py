"""Crash-consistency chaos campaign for the sweep service.

``repro chaos --service`` drives a real :class:`~repro.service.server
.SweepService` (in-thread, own socket, own cache directory per
scenario) through the failure modes a fleet job server actually meets,
and asserts one invariant above all others: **no accepted job is ever
lost or duplicated across crash and restart**.  "Accepted" is precise —
the server acked the submission; the write-before-ack ledger ordering
means a crash *before* the ack may lose the request (the client sees an
error and retries), but a crash *after* it may not.

Scenario ladder (each on a fresh server + cache):

* ``torn-submit`` — the ledger append for one submission is torn
  mid-multibyte-UTF-8 and the process "dies" before acking; after
  restart the torn line costs a counter, earlier accepted jobs
  complete, and the unacked job is (correctly) gone.
* ``kill-at-running`` — SIGKILL at the journaled ``queued -> running``
  transition; the restarted server resumes the job and it completes.
* ``duplicate-terminal`` — a terminal transition is replayed twice
  (crash between append and ack, client retried); restart tolerates it
  as a counter and does not re-run the job.
* ``torn-frame`` — a request frame truncated mid-UTF-8 sequence gets a
  typed protocol error, the connection survives, no job is admitted.
* ``hung-worker`` — an execution hangs; the progress watchdog kills
  and retries it and the job still completes.
* ``expired-deadline`` — a queued job's deadline lapses behind a busy
  slot; it reaches ``expired`` (exactly once) and stays expired after
  restart.

Every crash-stop leaves the socket file behind (like real SIGKILL), so
each restart also exercises the stale-socket connect-probe reclaim.

Determinism is the same contract as :mod:`repro.faults.chaos`: the
campaign keys its artifact on job *names* (never ids or timestamps),
runs the whole ladder twice, and asserts the two JSON payloads are
bit-identical — CI diffs two full CLI runs of the same seed on top.
"""

from __future__ import annotations

import json
import socket as socket_module
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.experiment import ExperimentConfig
from repro.core.parallel import RetryPolicy, simulate_config
from repro.errors import ServiceError, ServiceUnavailable
from repro.faults.chaos import Invariant
from repro.service.client import ServiceClient
from repro.service.jobs import TERMINAL_STATES, JobLedger
from repro.service.server import ServiceThread, SweepService


class SimulatedKill(BaseException):
    """The chaos harness's SIGKILL: raised from a ledger fault hook.

    Derives from :class:`BaseException` deliberately — real SIGKILL
    does not run ``except Exception`` cleanup handlers, so neither does
    its simulation.  Code under test must never catch it.
    """


@dataclass
class ServiceChaosReport:
    """The ``--service`` campaign artifact (bit-reproducible JSON)."""

    seed: int
    scenarios: list[dict[str, Any]] = field(default_factory=list)
    invariants: list[Invariant] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    @property
    def violations(self) -> list[Invariant]:
        return [inv for inv in self.invariants if not inv.ok]

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 1,
            "kind": "service-chaos",
            "seed": self.seed,
            "ok": self.ok,
            "scenarios": list(self.scenarios),
            "invariants": [inv.to_dict() for inv in self.invariants],
        }

    def render(self) -> str:
        lines = [
            f"service chaos campaign: seed={self.seed}",
            f"  {len(self.scenarios)} scenarios, "
            f"{len(self.invariants)} invariants checked",
        ]
        for inv in self.invariants:
            if not inv.ok:
                lines.append(f"  VIOLATION {inv.scenario} [{inv.id}]: "
                             f"{inv.detail}")
        lines.append("  all invariants hold" if self.ok
                     else f"  {len(self.violations)} violation(s)")
        return "\n".join(lines)


def _configs(n: int = 2) -> list[ExperimentConfig]:
    """Small, fast event-engine configs (mirrors the service tests)."""
    pairs = [(1, 2), (2, 2), (4, 2)]
    return [ExperimentConfig(app="ffvc", n_ranks=r, n_threads=t)
            for r, t in pairs[:n]]


def _wait_terminal(client: ServiceClient, timeout_s: float = 60.0) -> bool:
    """Poll until every job the server lists is terminal."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        jobs = client.jobs()
        if jobs and all(j.get("state") in TERMINAL_STATES for j in jobs):
            return True
        if not jobs:
            return True
        time.sleep(0.02)
    return False


def _wait_flag(flag: dict[str, bool], key: str,
               timeout_s: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if flag.get(key):
            return True
        time.sleep(0.01)
    return False


def _ledger_by_name(cache_dir: Path) -> dict[str, list[str]]:
    """Replay the ledger into ``job name -> [terminal-or-last state per
    accepted id]`` (names are the determinism-stable key)."""
    ledger = JobLedger(cache_dir / JobLedger.FILENAME)
    by_name: dict[str, list[str]] = {}
    for spec, state in ledger.replay().values():
        by_name.setdefault(spec.name, []).append(state)
    return by_name


class _Harness:
    """One scenario's server lifecycle + invariant recording."""

    def __init__(self, report: ServiceChaosReport, scenario: str,
                 root: Path) -> None:
        self.report = report
        self.scenario = scenario
        self.root = root
        self.cache_dir = root / "cache"
        self.socket_path = root / "svc.sock"
        self.thread: ServiceThread | None = None

    def check(self, inv_id: str, ok: bool, detail: str = "") -> None:
        self.report.invariants.append(Invariant(
            id=inv_id, app="service", scenario=self.scenario, ok=ok,
            detail=detail))

    def start(self, **kwargs: Any) -> SweepService:
        from repro.core.cache import ResultCache

        service = SweepService(self.socket_path,
                               cache=ResultCache(self.cache_dir),
                               workers=1, **kwargs)
        self.thread = ServiceThread(service).start()
        return service

    def client(self, **kwargs: Any) -> ServiceClient:
        kwargs.setdefault("timeout_s", 60.0)
        kwargs.setdefault("jitter_seed", self.report.seed)
        return ServiceClient(self.socket_path, **kwargs)

    def crash(self) -> None:
        """SIGKILL stand-in: abort without drain, socket left behind."""
        if self.thread is not None:
            self.thread.abort()
            self.thread = None

    def stop(self) -> None:
        if self.thread is not None:
            self.thread.stop()
            self.thread = None

    def restart_after_crash(self, **kwargs: Any) -> SweepService:
        """Restart over the leftover socket (stale-socket reclaim)."""
        leftover = self.socket_path.exists()
        service = self.start(**kwargs)
        self.check("stale-socket-reclaimed", leftover,
                   detail="crash left no socket file behind"
                   if not leftover else "")
        return service


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _scenario_torn_submit(report: ServiceChaosReport, root: Path) -> None:
    h = _Harness(report, "torn-submit", root)
    fired: dict[str, bool] = {}
    ledger_path = h.cache_dir / JobLedger.FILENAME

    def hook(data: bytes) -> bytes | None:
        if b'"name":"torn-victim"' in data and not fired.get("killed"):
            fired["killed"] = True
            # Torn write then death: half the record, ending inside a
            # multibyte UTF-8 sequence, no newline — then SIGKILL.
            with open(ledger_path, "ab") as fh:
                fh.write(data[: len(data) // 2] + b"\xe2\x82")
            raise SimulatedKill("torn ledger append")
        return None

    service = h.start()
    service.ledger.fault_hook = hook
    accepted_ok = False
    victim_rejected = False
    with h.client() as client:
        job = client.submit("survivor", _configs(2))
        accepted_ok = bool(job.get("job_id"))
        try:
            client.submit("torn-victim", _configs(1))
        except (ServiceUnavailable, ServiceError):
            victim_rejected = True
    _wait_flag(fired, "killed")
    h.crash()

    service = h.restart_after_crash()
    with h.client() as client:
        finished = _wait_terminal(client)
    torn = service.ledger.torn_lines
    h.stop()

    states = _ledger_by_name(h.cache_dir)
    h.check("accepted-before-ack", accepted_ok and victim_rejected,
            detail=f"survivor acked={accepted_ok}, "
                   f"torn submission errored={victim_rejected}")
    h.check("torn-line-tolerated", torn >= 1,
            detail=f"replay counted {torn} torn line(s)")
    h.check("accepted-jobs-survive",
            finished and states.get("survivor") == ["completed"],
            detail=f"survivor states after restart: "
                   f"{states.get('survivor')}")
    h.check("unacked-not-resurrected", "torn-victim" not in states,
            detail=f"torn submission reappeared as {states.get('torn-victim')}")
    report.scenarios.append({
        "scenario": "torn-submit", "torn_lines": torn,
        "states": {k: sorted(v) for k, v in sorted(states.items())},
    })


def _scenario_kill_at_running(report: ServiceChaosReport,
                              root: Path) -> None:
    h = _Harness(report, "kill-at-running", root)
    fired: dict[str, bool] = {}

    def hook(data: bytes) -> bytes | None:
        if b'"state":"running"' in data and not fired.get("killed"):
            fired["killed"] = True
            raise SimulatedKill("kill at queued->running transition")
        return None

    service = h.start()
    service.ledger.fault_hook = hook
    with h.client() as client:
        client.submit("resumable", _configs(2))
    _wait_flag(fired, "killed")
    h.crash()

    service = h.restart_after_crash()
    resumed = service._n_resumed
    with h.client() as client:
        finished = _wait_terminal(client)
    h.stop()

    states = _ledger_by_name(h.cache_dir)
    h.check("killed-transition-resumes", resumed == 1,
            detail=f"restart resumed {resumed} job(s), expected 1")
    h.check("accepted-jobs-survive",
            finished and states.get("resumable") == ["completed"],
            detail=f"states after restart: {states.get('resumable')}")
    report.scenarios.append({
        "scenario": "kill-at-running", "resumed": resumed,
        "states": {k: sorted(v) for k, v in sorted(states.items())},
    })


def _scenario_duplicate_terminal(report: ServiceChaosReport,
                                 root: Path) -> None:
    h = _Harness(report, "duplicate-terminal", root)
    h.start()
    with h.client() as client:
        client.submit("doubled", _configs(1))
        _wait_terminal(client)
    h.stop()

    # Crash-between-append-and-ack, replayed on restart: the terminal
    # transition lands in the ledger twice.
    ledger = JobLedger(h.cache_dir / JobLedger.FILENAME)
    replayed = {spec.name: (jid, state)
                for jid, (spec, state) in ledger.replay().items()}
    jid, state = replayed["doubled"]
    ledger._append({"event": "state", "job_id": jid, "state": state,
                    "error": "", "t": 0.0})

    service = h.start()
    duplicates = service.ledger.duplicate_transitions
    resumed = service._n_resumed
    h.stop()

    states = _ledger_by_name(h.cache_dir)
    h.check("duplicate-terminal-tolerated", duplicates == 1,
            detail=f"replay counted {duplicates} duplicate "
                   f"transition(s), expected 1")
    h.check("not-duplicated", resumed == 0
            and states.get("doubled") == ["completed"],
            detail=f"resumed={resumed}, states={states.get('doubled')}")
    report.scenarios.append({
        "scenario": "duplicate-terminal",
        "duplicate_transitions": duplicates, "resumed": resumed,
        "states": {k: sorted(v) for k, v in sorted(states.items())},
    })


def _scenario_torn_frame(report: ServiceChaosReport, root: Path) -> None:
    h = _Harness(report, "torn-frame", root)
    h.start()
    raw = socket_module.socket(socket_module.AF_UNIX,
                               socket_module.SOCK_STREAM)
    raw.settimeout(10.0)
    raw.connect(str(h.socket_path))
    reader = raw.makefile("rb")
    try:
        reader.readline()  # hello
        # A submit frame cut mid-multibyte UTF-8 sequence.
        raw.sendall(b'{"v":1,"op":"submit","name":"\xe2\x82\n')
        error = json.loads(reader.readline())
        raw.sendall(b'{"v":1,"op":"ping"}\n')
        pong = json.loads(reader.readline())
    finally:
        reader.close()
        raw.close()
    with h.client() as client:
        admitted = len(client.jobs())
    h.stop()

    h.check("torn-frame-rejected",
            error.get("type") == "error"
            and error.get("code") == "protocol",
            detail=f"got {error.get('type')}/{error.get('code')}")
    h.check("connection-survives", pong.get("type") == "pong",
            detail=f"post-error frame was {pong.get('type')}")
    h.check("nothing-admitted", admitted == 0,
            detail=f"{admitted} job(s) admitted from a torn frame")
    report.scenarios.append({
        "scenario": "torn-frame", "error_code": error.get("code"),
        "admitted": admitted,
    })


def _scenario_hung_worker(report: ServiceChaosReport, root: Path) -> None:
    import threading

    h = _Harness(report, "hung-worker", root)
    release = threading.Event()
    calls: dict[str, int] = {"n": 0}

    def fn(config: ExperimentConfig) -> tuple[bool, Any]:
        calls["n"] += 1
        if calls["n"] == 1:
            # First attempt hangs until teardown (a wedged worker).
            release.wait(30.0)
            return False, RuntimeError("hung attempt released late")
        return simulate_config(config)

    service = h.start(
        exec_timeout_s=0.25,
        retry=RetryPolicy(max_attempts=2, backoff_s=0.01),
        simulate_fn=fn)
    try:
        with h.client() as client:
            client.submit("wedged", _configs(1))
            finished = _wait_terminal(client)
        kills = service.scheduler.stats["watchdog_kills"]
    finally:
        release.set()
    h.stop()

    states = _ledger_by_name(h.cache_dir)
    h.check("watchdog-fires", kills == 1,
            detail=f"watchdog killed {kills} attempt(s), expected 1")
    h.check("killed-and-requeued",
            finished and states.get("wedged") == ["completed"],
            detail=f"states: {states.get('wedged')}")
    report.scenarios.append({
        "scenario": "hung-worker", "watchdog_kills": kills,
        "states": {k: sorted(v) for k, v in sorted(states.items())},
    })


def _scenario_expired_deadline(report: ServiceChaosReport,
                               root: Path) -> None:
    h = _Harness(report, "expired-deadline", root)

    def slow_fn(config: ExperimentConfig) -> tuple[bool, Any]:
        time.sleep(0.25)
        return simulate_config(config)

    h.start(max_jobs=1, simulate_fn=slow_fn)
    with h.client() as client:
        client.submit("occupier", _configs(2))
        # A disjoint config (no cache/dedup shortcut past the slow
        # worker) queued behind >=0.25s of busy slot with a 0.05s
        # budget: the reaper must expire it long before it could ever
        # finish (earliest completion >=0.5s, reaper latency <=~0.26s).
        doomed_config = ExperimentConfig(app="ffvc", n_ranks=8,
                                         n_threads=8)
        client.submit("doomed", [doomed_config], deadline_s=0.05)
        finished = _wait_terminal(client)
    h.stop()

    service = h.start()
    resumed = service._n_resumed
    h.stop()

    states = _ledger_by_name(h.cache_dir)
    h.check("deadline-expires",
            finished and states.get("doomed") == ["expired"],
            detail=f"states: {states.get('doomed')}")
    h.check("expiry-spares-others",
            states.get("occupier") == ["completed"],
            detail=f"states: {states.get('occupier')}")
    h.check("expired-stays-terminal", resumed == 0,
            detail=f"restart resumed {resumed} job(s), expected 0")
    report.scenarios.append({
        "scenario": "expired-deadline", "resumed": resumed,
        "states": {k: sorted(v) for k, v in sorted(states.items())},
    })


_SCENARIOS: tuple[tuple[str, Callable[[ServiceChaosReport, Path], None]],
                  ...] = (
    ("torn-submit", _scenario_torn_submit),
    ("kill-at-running", _scenario_kill_at_running),
    ("duplicate-terminal", _scenario_duplicate_terminal),
    ("torn-frame", _scenario_torn_frame),
    ("hung-worker", _scenario_hung_worker),
    ("expired-deadline", _scenario_expired_deadline),
)


def _no_lost_no_duplicates(report: ServiceChaosReport) -> None:
    """The campaign-level invariant over every scenario's ledger view:
    each accepted job name maps to exactly one job id in exactly one
    terminal state."""
    for record in report.scenarios:
        states = record.get("states")
        if not isinstance(states, dict):
            continue
        for name, per_id in states.items():
            report.invariants.append(Invariant(
                id="exactly-one-terminal", app="service",
                scenario=str(record["scenario"]),
                ok=len(per_id) == 1 and per_id[0] in TERMINAL_STATES,
                detail=f"job {name!r} -> {per_id}"))


def _run_once(seed: int, root: Path) -> ServiceChaosReport:
    report = ServiceChaosReport(seed=seed)
    for name, scenario in _SCENARIOS:
        scenario(report, root / name)
    _no_lost_no_duplicates(report)
    return report


def run_service_campaign(seed: int = 0, *,
                         workdir: str | Path | None = None
                         ) -> ServiceChaosReport:
    """Run the service chaos ladder twice and return the (replay-
    checked) report.

    ``workdir`` hosts the per-scenario cache/socket directories
    (default: a temporary directory, removed afterwards).
    """
    import tempfile

    def _both(root: Path) -> ServiceChaosReport:
        report = _run_once(seed, root / "run1")
        replay = _run_once(seed, root / "run2")
        report.invariants.append(Invariant(
            id="deterministic-replay", app="service", scenario="campaign",
            ok=json.dumps(report.to_json(), sort_keys=True)
            == json.dumps(replay.to_json(), sort_keys=True),
            detail="two runs of the same seed diverged"))
        # Self-reference guard: the invariant above compared the
        # pre-append payloads, so appending it keeps the artifact
        # itself reproducible.
        return report

    if workdir is not None:
        return _both(Path(workdir))
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return _both(Path(tmp))
