"""Internal consistency validation.

The credibility of a simulation-based reproduction rests on its skeletons
agreeing with its executable physics and its machine catalog agreeing with
the published silicon.  :func:`validate_all` runs every check and returns
the list of discrepancies (empty = healthy); the test suite asserts it is
empty, and ``python -m repro`` users can call it after modifying models.

Checks:

* **work accounting** — each miniapp's simulated FLOP total at 1 rank
  matches the closed-form count derived from its dataset parameters
  (the same formulas the physics implementations execute);
* **decomposition conservation** — rank counts change the FLOP total only
  through documented surface/serial terms (bounded drift);
* **catalog sanity** — peak FLOP/s and memory bandwidth of every cataloged
  processor match the published figures;
* **bandwidth curve** — the A64FX STREAM knee sits at the published
  ~5 cores/CMG and the chip figure lands in the published band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine import catalog
from repro.miniapps import SUITE, by_name
from repro.runtime.executor import run_job
from repro.runtime.placement import JobPlacement


@dataclass(frozen=True)
class ValidationIssue:
    """One failed consistency check."""

    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.check}] {self.detail}"

    def to_diagnostic(self):
        """This issue in the static analyzer's Diagnostic vocabulary,
        under the ``model-`` check-id namespace."""
        from repro.analysis.diagnostics import Diagnostic

        return Diagnostic(
            check=f"model-{self.check}", severity="error",
            message=self.detail,
            hint="the executable model disagrees with the published "
                 "figures it reproduces; re-check the last model edit",
        )


# ----------------------------------------------------------------------
# closed-form FLOP counts per miniapp (as-is dataset, whole job)
# ----------------------------------------------------------------------
def _expected_flops_as_is(app_name: str) -> tuple[float, float]:
    """(expected FLOPs, relative tolerance) for the as-is dataset."""
    app = by_name(app_name)
    ds = app.dataset("as-is")
    if app_name == "ccs-qcd":
        lt, lz, ly, lx = ds["lattice"]
        sites = lt * lz * ly * lx
        per_iter = (2 * 1344 + 6 * 48 + 4 * 48) * sites  # 2 dirac, axpy, dot
        return per_iter * ds["iters"], 0.10
    if app_name == "ffvc":
        nx, ny, nz = ds["grid"]
        cells = nx * ny * nz
        per_step = (60 + 2 * 18 + ds["sor_sweeps"] * 14) * cells
        return per_step * ds["steps"], 0.10
    if app_name == "ntchem":
        n_occ, n_vir, n_aux = ds["n_occ"], ds["n_vir"], ds["n_aux"]
        pairs = n_occ * (n_occ + 1) // 2
        gemm = pairs * n_vir * n_vir * n_aux * 2.0
        return gemm, 0.10
    if app_name == "nicam-dc":
        cells = ds["regions"] * ds["region_size"] ** 2 * ds["levels"]
        per_step = (2 * 260 + 24) * cells
        return per_step * ds["steps"], 0.10
    raise KeyError(f"no closed-form count for {app_name}")


def check_work_accounting() -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    cluster = catalog.a64fx()
    for app_name in ("ccs-qcd", "ffvc", "ntchem", "nicam-dc"):
        expected, tol = _expected_flops_as_is(app_name)
        app = by_name(app_name)
        placement = JobPlacement(cluster, 1, 48)
        result = run_job(app.build_job(cluster, placement, "as-is"))
        rel = abs(result.total_flops - expected) / expected
        if rel > tol:
            issues.append(ValidationIssue(
                "work-accounting",
                f"{app_name}: simulated {result.total_flops:.3e} FLOPs vs "
                f"closed-form {expected:.3e} (drift {rel:.1%} > {tol:.0%})",
            ))
    return issues


def check_decomposition_conservation() -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    cluster = catalog.a64fx()
    for app_name in SUITE:
        app = by_name(app_name)
        totals = []
        for nr, nt in ((1, 48), (8, 6), (48, 1)):
            placement = JobPlacement(cluster, nr, nt)
            totals.append(run_job(
                app.build_job(cluster, placement, "as-is")).total_flops)
        drift = (max(totals) - min(totals)) / min(totals)
        if drift > 0.25:
            issues.append(ValidationIssue(
                "decomposition",
                f"{app_name}: FLOP total varies {drift:.1%} across rank "
                f"counts (surface/serial terms should stay < 25%)",
            ))
    return issues


#: Published node-level figures: (peak fp64 FLOP/s, peak mem bytes/s).
_PUBLISHED = {
    "A64FX": (3.3792e12, 1024e9),
    "A64FX-FX700": (2.7648e12, 1024e9),     # 1.8 GHz commercial part
    "Xeon-Skylake": (3.072e12, 256e9),
    "ThunderX2": (0.896e12, 342e9),
    "SPARC64-VIIIfx": (0.128e12, 64e9),
}


def check_catalog_sanity() -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for name, (peak_flops, peak_bw) in _PUBLISHED.items():
        cluster = catalog.by_name(name)
        got_flops = cluster.node.peak_flops_fp64
        got_bw = cluster.node.peak_memory_bandwidth
        if abs(got_flops - peak_flops) / peak_flops > 0.02:
            issues.append(ValidationIssue(
                "catalog", f"{name}: peak FLOPs {got_flops:.3e} != "
                           f"published {peak_flops:.3e}"))
        if abs(got_bw - peak_bw) / peak_bw > 0.02:
            issues.append(ValidationIssue(
                "catalog", f"{name}: memory BW {got_bw:.3e} != "
                           f"published {peak_bw:.3e}"))
    return issues


def check_bandwidth_curve() -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    dom = catalog.a64fx().node.chips[0].domains[0]
    knee = dom.memory.sustained_bandwidth / dom.memory.single_stream_bandwidth
    if not 3.0 <= knee <= 7.0:
        issues.append(ValidationIssue(
            "bandwidth-curve",
            f"A64FX CMG saturates at {knee:.1f} streams; published curves "
            f"show ~4-6 cores"))
    chip_bw = 4 * dom.memory.sustained_bandwidth
    if not 780e9 <= chip_bw <= 880e9:
        issues.append(ValidationIssue(
            "bandwidth-curve",
            f"A64FX chip sustained {chip_bw / 1e9:.0f} GB/s outside the "
            f"published STREAM band (~790-840)"))
    return issues


def check_engine_agreement(sample_size: int = 2) -> list[ValidationIssue]:
    """Seeded sim-vs-analytic cross-validation over the f1 grid.

    Scores every app's MPI x OpenMP grid with the analytic engine, then
    re-simulates a seeded sample of each grid with the event executor
    and reports any disagreement beyond the calibrated tolerance
    (:data:`repro.analytic.ELAPSED_RTOL` /
    :data:`repro.analytic.GFLOPS_RTOL`).  The sample is deterministic
    (string-seeded), so CI failures reproduce locally.
    """
    from repro.analytic import engine as analytic
    from repro.core.experiment import MPI_OMP_CONFIGS, ExperimentConfig
    from repro.errors import EngineDisagreement

    issues: list[ValidationIssue] = []
    for app_name in SUITE:
        configs = [
            ExperimentConfig(app=app_name, dataset="as-is",
                             n_ranks=nr, n_threads=nt)
            for nr, nt in MPI_OMP_CONFIGS
        ]
        rows = analytic.score_configs(configs)
        for config, row in zip(configs, rows):
            if isinstance(row, Exception):
                issues.append(ValidationIssue(
                    "engine-agreement",
                    f"{config.label()}: analytic scoring failed: {row}"))
        try:
            analytic.cross_validate(f"validate-{app_name}", configs, rows,
                                    sample_size=sample_size)
        except EngineDisagreement as exc:
            issues.append(ValidationIssue("engine-agreement", str(exc)))
    return issues


def validate_engines(sample_size: int = 2):
    """:func:`check_engine_agreement` as a DiagnosticReport (the
    ``repro validate --engines`` CI gate)."""
    from repro.analysis.diagnostics import DiagnosticReport

    report = DiagnosticReport("engine agreement")
    report.extend(issue.to_diagnostic()
                  for issue in check_engine_agreement(sample_size))
    return report


def validate_advise():
    """Advisor cleanliness over every catalog machine x miniapp F1 grid.

    Runs the static performance advisor on every (processor, app,
    ranks x threads) point of each machine's own single-node
    factorization grid (``single_node_configs(cores_per_node)`` — the
    F1 axis sized to the machine, so an 8-core SPARC64-VIIIfx is swept
    at 8 cores, not 48) and folds every finding into one report.

    The ``advise-clean`` CI gate asserts the report carries **zero
    error-severity** findings — i.e. every grid point the figures sweep
    is statically feasible.  Warnings and infos (memory-boundedness,
    gather diagnoses, ...) are expected model observations; the CI job
    records them as an artifact instead of failing on them.
    """
    from repro.analysis.advisor import advise_config
    from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
    from repro.core.experiment import ExperimentConfig, single_node_configs

    report = DiagnosticReport("advise clean")
    for proc in sorted(catalog.PROCESSORS):
        cores = catalog.by_name(proc).cores_per_node
        for app_name in sorted(SUITE):
            for n_ranks, n_threads in single_node_configs(cores):
                config = ExperimentConfig(
                    app=app_name, dataset="as-is", processor=proc,
                    n_ranks=n_ranks, n_threads=n_threads,
                )
                sub = advise_config(config)
                for diag in sub.diagnostics:
                    # prefix the config so findings stay attributable
                    # after folding into the one flat report
                    report.add(Diagnostic(
                        check=diag.check, severity=diag.severity,
                        message=f"{config.label()}: {diag.message}",
                        rank=diag.rank, op_index=diag.op_index,
                        op=diag.op, hint=diag.hint,
                    ))
    return report


def validate_all() -> list[ValidationIssue]:
    """Run every check; returns the list of discrepancies (empty = OK)."""
    issues: list[ValidationIssue] = []
    issues += check_catalog_sanity()
    issues += check_bandwidth_curve()
    issues += check_work_accounting()
    issues += check_decomposition_conservation()
    return issues


def validate_diagnostics():
    """:func:`validate_all`, reported as a
    :class:`~repro.analysis.diagnostics.DiagnosticReport` — the same
    vocabulary `repro lint` renders, so model-consistency findings and
    communication-structure findings read identically."""
    from repro.analysis.diagnostics import DiagnosticReport

    report = DiagnosticReport("model consistency")
    report.extend(issue.to_diagnostic() for issue in validate_all())
    return report
