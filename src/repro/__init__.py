"""repro — A64FX / Fiber Miniapp Suite performance evaluation framework.

A reproduction of "Performance Evaluation and Analysis of A64FX many-core
Processor for the Fiber Miniapp Suite" (Sato & Tsuji, CLUSTER 2021) with
simulated hardware/runtime/compiler substrates and executable miniapp
numerics.  See README.md for the tour and DESIGN.md for the substitution
table.

Public entry points::

    from repro.machine import catalog        # processor models
    from repro.miniapps import by_name       # the eight miniapps
    from repro.runtime import JobPlacement, run_job
    from repro.core import figures           # regenerate paper artifacts
"""

__version__ = "1.9.0"

__all__ = ["__version__"]
