"""The loop-kernel descriptor.

One :class:`LoopKernel` characterizes one inner loop *per iteration* (an
iteration is the natural work unit: a lattice site, a grid cell, a particle
pair, a matrix-block multiply-add...).  The descriptor is deliberately
architecture-free: everything architecture-specific happens in
:mod:`repro.compile` (what the compiler makes of the loop) and
:mod:`repro.kernels.timing` (what the hardware makes of the compiled loop).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LoopKernel:
    """Per-iteration characterization of an inner loop.

    Parameters
    ----------
    name:
        Identifier used in traces and reports (``"qcd-mult-hopping"``).
    flops:
        fp64-equivalent floating-point operations per iteration.
    fma_fraction:
        Fraction of ``flops`` expressed as fused multiply-adds.
    bytes_load / bytes_store:
        Data touched per iteration (load / store side), before any cache
        filtering.  This is the L1-level traffic.
    working_set_bytes:
        Reuse footprint per thread — the data that must stay resident for
        the loop's temporal reuse to materialize (stencil planes, a matrix
        block, the lookup tables).  Compared against cache capacities by
        :func:`repro.kernels.workingset.level_traffic`.
    streaming_fraction:
        Fraction of the traffic that is pure streaming (no temporal reuse —
        always misses to memory regardless of cache size).  STREAM triad is
        1.0; a blocked DGEMM is close to 0.
    vec_fraction:
        Fraction of the FLOPs that *can* be vectorized (data-dependence
        limited; the compiler may achieve less, never more).
    ilp:
        Average number of independent FP operations available per dependency
        window in the source loop (before software pipelining).  A
        reduction has ilp ~ 1-2; an unrolled stencil 4-8; DGEMM micro-kernels
        16+.
    contiguous_fraction:
        Fraction of memory accesses that are unit-stride.  The remainder is
        treated as gather/scatter (partial cache-line use + latency
        exposure).
    int_ops:
        Integer/logical/compare operations per iteration that are *not* mere
        address arithmetic (e.g. the NGS Analyzer's string comparisons).
        These execute on the scalar side unless ``int_vectorizable``.
    int_vectorizable:
        Whether the integer work can be vectorized (byte-compare SIMD, as
        the Fujitsu compiler eventually does for alignment kernels).
    element_bytes:
        Floating-point element size: 8 (fp64, default) or 4 (fp32 — twice
        the SIMD lanes per instruction on every modeled ISA; NICAM and
        FFVC run parts of their stencils in single precision).
    """

    name: str
    flops: float
    fma_fraction: float = 0.5
    bytes_load: float = 0.0
    bytes_store: float = 0.0
    working_set_bytes: float = 0.0
    streaming_fraction: float = 1.0
    vec_fraction: float = 1.0
    ilp: float = 4.0
    contiguous_fraction: float = 1.0
    int_ops: float = 0.0
    int_vectorizable: bool = False
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if self.flops < 0 or self.int_ops < 0:
            raise ConfigurationError(f"{self.name}: op counts must be non-negative")
        if self.flops == 0 and self.int_ops == 0:
            raise ConfigurationError(f"{self.name}: kernel does no work")
        if self.bytes_load < 0 or self.bytes_store < 0:
            raise ConfigurationError(f"{self.name}: byte counts must be non-negative")
        for field_name in ("fma_fraction", "streaming_fraction", "vec_fraction",
                           "contiguous_fraction"):
            v = getattr(self, field_name)
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"{self.name}: {field_name} must be in [0, 1]")
        if self.working_set_bytes < 0:
            raise ConfigurationError(f"{self.name}: working set must be non-negative")
        if self.ilp <= 0:
            raise ConfigurationError(f"{self.name}: ilp must be positive")
        if self.element_bytes not in (4, 8):
            raise ConfigurationError(
                f"{self.name}: element_bytes must be 4 (fp32) or 8 (fp64)"
            )

    # ------------------------------------------------------------------
    @property
    def bytes_total(self) -> float:
        """Data touched per iteration (both directions)."""
        return self.bytes_load + self.bytes_store

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of touched data (L1-level AI)."""
        if self.bytes_total == 0:
            return float("inf")
        return self.flops / self.bytes_total

    def dram_arithmetic_intensity(self, dram_bytes_per_iter: float) -> float:
        """FLOPs per byte of *memory* traffic (roofline x-coordinate)."""
        if dram_bytes_per_iter <= 0:
            return float("inf")
        return self.flops / dram_bytes_per_iter

    def scaled(self, factor: float, name: str | None = None) -> "LoopKernel":
        """A copy with all per-iteration op/byte counts multiplied.

        Used when the natural iteration unit changes (e.g. fusing a site
        loop into a plane loop).
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(
            self,
            name=name or self.name,
            flops=self.flops * factor,
            bytes_load=self.bytes_load * factor,
            bytes_store=self.bytes_store * factor,
            int_ops=self.int_ops * factor,
        )
