"""Cache-level traffic estimation.

Splits a kernel's touched bytes into the traffic each memory-hierarchy level
must carry.  Two components:

* **streaming traffic** (``streaming_fraction``) passes through every level
  untouched — it always goes to DRAM;
* **reuse traffic** is filtered by each level according to whether the
  kernel's per-thread ``working_set_bytes`` fits
  (:meth:`repro.machine.cache.CacheSpec.hit_fraction`).

Gather/scatter access additionally inflates the traffic below L1 by the
inverse line utilization — fetching a 256-byte A64FX line to use 8 bytes of
it costs the full line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.cache import CacheSpec
from repro.kernels.kernel import LoopKernel


@dataclass(frozen=True)
class LevelTraffic:
    """Bytes per iteration each level must move for one kernel iteration.

    ``l1_miss_fraction`` / ``l2_miss_fraction`` are the fractions of
    *accesses* that fall through each level — used by the latency model for
    gather exposure (distinct from the byte ratios, which include the
    line-utilization inflation).
    """

    l1_bytes: float
    l2_bytes: float
    dram_bytes: float
    l1_miss_fraction: float = 0.0
    l2_miss_fraction: float = 0.0

    def __post_init__(self) -> None:
        if min(self.l1_bytes, self.l2_bytes, self.dram_bytes) < 0:
            raise ConfigurationError("traffic must be non-negative")
        for f in (self.l1_miss_fraction, self.l2_miss_fraction):
            if not 0.0 <= f <= 1.0:
                raise ConfigurationError("miss fractions must be in [0, 1]")


def level_traffic(
    kernel: LoopKernel,
    l1: CacheSpec,
    l2: CacheSpec,
    working_set_scale: float = 1.0,
) -> LevelTraffic:
    """Traffic per iteration at L1, L2 and DRAM for ``kernel``.

    Parameters
    ----------
    kernel:
        The loop descriptor.
    l1, l2:
        The cache levels of the executing core's domain.
    working_set_scale:
        Multiplier on the kernel's per-thread working set.  The OpenMP layer
        uses this to model *constructive sharing* in a shared L2: threads of
        the same rank working on adjacent chunks share stencil halos and
        tables, so the per-thread footprint in the shared level shrinks
        (scale < 1) — while threads of distinct MPI ranks sharing a CMG each
        bring their own copy (scale = 1).
    """
    if working_set_scale <= 0:
        raise ConfigurationError("working_set_scale must be positive")

    touched = kernel.bytes_total
    if touched == 0:
        return LevelTraffic(0.0, 0.0, 0.0)

    ws = kernel.working_set_bytes * working_set_scale
    streaming = touched * kernel.streaming_fraction
    reuse = touched - streaming

    # All touched data moves through L1 by definition.
    l1_bytes = touched

    # Reuse traffic is absorbed by L1 to the extent the footprint fits;
    # what misses L1 inflates by the L2 line utilization for gathers.
    l1_hit = l1.hit_fraction(ws)
    below_l1 = streaming + reuse * (1.0 - l1_hit)
    l2_util = l2.effective_line_utilization(kernel.contiguous_fraction)
    l2_bytes = below_l1 / l2_util

    # Of the reuse traffic that missed L1, L2 absorbs its share.
    l2_hit = l2.hit_fraction(ws)
    reuse_below_l1 = reuse * (1.0 - l1_hit)
    below_l2 = streaming + reuse_below_l1 * (1.0 - l2_hit)
    dram_bytes = below_l2 / l2_util

    return LevelTraffic(
        l1_bytes=l1_bytes,
        l2_bytes=l2_bytes,
        dram_bytes=dram_bytes,
        l1_miss_fraction=below_l1 / touched,
        l2_miss_fraction=(below_l2 / below_l1) if below_l1 > 0 else 0.0,
    )
