"""Recurring kernel classes of the Fiber suite.

The eight miniapps are built from a small set of inner-loop archetypes; each
factory returns a fully characterized :class:`~repro.kernels.kernel.LoopKernel`
that the miniapp skeletons parameterize with their problem sizes.  Having
them in one place also gives the microbenchmark experiments (F7 STREAM
scaling, roofline corners) canonical kernels to run.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels.kernel import LoopKernel
from repro.units import FP64_BYTES


def stream_triad() -> LoopKernel:
    """STREAM triad ``a[i] = b[i] + s * c[i]`` — the bandwidth yardstick.

    Per element: 2 FLOPs (one FMA), 2 loads + 1 store (+ write-allocate on
    the store stream counted as a load), no reuse.
    """
    return LoopKernel(
        name="stream-triad",
        flops=2.0,
        fma_fraction=1.0,
        bytes_load=3 * FP64_BYTES,   # b, c, write-allocate of a
        bytes_store=FP64_BYTES,
        working_set_bytes=0.0,
        streaming_fraction=1.0,
        vec_fraction=1.0,
        ilp=8.0,
        contiguous_fraction=1.0,
    )


def stencil_star(points: int, planes_bytes: float, *, fields: int = 1) -> LoopKernel:
    """A star stencil of ``points`` neighbours over ``fields`` coupled fields.

    ``planes_bytes`` is the per-thread reuse footprint (the stencil planes
    that must stay resident for neighbour reuse).  Per grid cell:
    ``points`` multiply-adds per field; streaming traffic of one read +
    one write per field (neighbour reuse absorbs the rest when the planes
    fit).
    """
    if points < 3:
        raise ConfigurationError("a stencil needs at least 3 points")
    if fields < 1:
        raise ConfigurationError("fields must be >= 1")
    return LoopKernel(
        name=f"stencil-{points}pt",
        flops=2.0 * points * fields,
        fma_fraction=0.9,
        bytes_load=(points / 2.0) * FP64_BYTES * fields,
        bytes_store=FP64_BYTES * fields,
        working_set_bytes=planes_bytes,
        streaming_fraction=0.35,
        vec_fraction=1.0,
        ilp=6.0,
        contiguous_fraction=0.95,
    )


def dgemm_blocked(block: int = 96) -> LoopKernel:
    """Blocked DGEMM micro-kernel (per multiply-add on one element pair).

    An iteration is one scalar FMA of the k-loop; traffic per FLOP is tiny
    because the ``block x block`` tiles live in cache.
    """
    if block < 8:
        raise ConfigurationError("block must be >= 8")
    ws = 3 * block * block * FP64_BYTES
    # Per FMA: 2 flops; streaming traffic amortized over the block reuse:
    # each A/B element is reused `block` times.
    bytes_per_fma = 2.0 * FP64_BYTES / block
    return LoopKernel(
        name=f"dgemm-b{block}",
        flops=2.0,
        fma_fraction=1.0,
        bytes_load=bytes_per_fma,
        bytes_store=bytes_per_fma / 4.0,
        working_set_bytes=ws,
        streaming_fraction=0.02,
        vec_fraction=1.0,
        ilp=24.0,
        contiguous_fraction=1.0,
    )


def spmv_csr(nnz_per_row: float, row_bytes: float) -> LoopKernel:
    """Sparse matrix-vector product, CSR, per non-zero.

    Per nnz: one FMA (2 FLOPs); loads the value (8 B) + column index (4 B)
    streams plus an indirect read of x (gather).  ``row_bytes`` is the
    per-thread x-vector footprint that can be reused.
    """
    if nnz_per_row <= 0 or row_bytes < 0:
        raise ConfigurationError("bad SpMV parameters")
    return LoopKernel(
        name="spmv-csr",
        flops=2.0,
        fma_fraction=1.0,
        bytes_load=8.0 + 4.0 + 8.0,   # A value, col index, x gather
        bytes_store=8.0 / nnz_per_row,
        working_set_bytes=row_bytes,
        streaming_fraction=0.6,
        vec_fraction=0.8,
        ilp=4.0,
        contiguous_fraction=0.6,
    )


def particle_pair_force(cutoff_pairs: float = 1.0) -> LoopKernel:
    """Short-range MD pair force (Lennard-Jones-like), per pair.

    ~30 FLOPs per pair (distances, r^-6, force accumulation), gathers of
    neighbour coordinates through the cell list.
    """
    if cutoff_pairs <= 0:
        raise ConfigurationError("cutoff_pairs must be positive")
    return LoopKernel(
        name="md-pair-force",
        flops=30.0,
        fma_fraction=0.6,
        bytes_load=6 * FP64_BYTES,    # xj(3) gathered + xi(3) cached
        bytes_store=3 * FP64_BYTES / 8.0,
        working_set_bytes=256 * 1024,  # cell-list neighbourhood
        streaming_fraction=0.3,
        vec_fraction=0.85,
        ilp=8.0,
        contiguous_fraction=0.5,
    )


def complex_matvec_su3() -> LoopKernel:
    """SU(3) matrix x spinor multiply (lattice QCD hopping term), per site
    and direction: 3x3 complex matrix times 2 projected spinors.

    66 complex FMAs ~ 264 real FLOPs per site-direction (projection +
    reconstruction folded in).  Gauge links stream; spinors have
    neighbour reuse.
    """
    return LoopKernel(
        name="qcd-su3-matvec",
        flops=264.0,
        fma_fraction=0.85,
        bytes_load=(18 + 24) * FP64_BYTES,  # link (3x3 cplx) + spinor (12 cplx / 2)
        bytes_store=12 * FP64_BYTES,
        working_set_bytes=2 * 1024 * 1024,
        streaming_fraction=0.55,
        vec_fraction=0.95,
        ilp=12.0,
        contiguous_fraction=0.9,
    )


def integer_compare_scan(table_bytes: float) -> LoopKernel:
    """Sequence-alignment style integer kernel (NGS Analyzer), per base.

    Dominated by byte compares, table lookups and branches; essentially no
    floating point; vectorizable only by an aggressive byte-SIMD compiler.
    """
    if table_bytes < 0:
        raise ConfigurationError("table_bytes must be non-negative")
    return LoopKernel(
        name="int-compare-scan",
        flops=0.5,                      # occasional score arithmetic
        fma_fraction=0.0,
        bytes_load=12.0,
        bytes_store=2.0,
        working_set_bytes=table_bytes,
        streaming_fraction=0.5,
        vec_fraction=0.1,
        ilp=2.0,
        contiguous_fraction=0.7,
        int_ops=24.0,
        int_vectorizable=True,
    )


def dense_update_pfaffian(n: int) -> LoopKernel:
    """mVMC Pfaffian/Slater-matrix rank-1 update, per matrix element.

    BLAS-2-like: one FMA per element, row/column streams with the matrix
    resident when it fits.
    """
    if n < 2:
        raise ConfigurationError("matrix dimension must be >= 2")
    return LoopKernel(
        name=f"pfaffian-update-n{n}",
        flops=2.0,
        fma_fraction=1.0,
        bytes_load=2 * FP64_BYTES,
        bytes_store=FP64_BYTES,
        working_set_bytes=float(n * n * FP64_BYTES),
        streaming_fraction=0.2,
        vec_fraction=0.9,
        ilp=3.0,                      # short dependent updates
        contiguous_fraction=0.85,
    )


def fem_element_assembly(nodes_per_elem: int = 8) -> LoopKernel:
    """FEM element-matrix computation + scatter-add (FFB), per element node
    pair: dense small-matrix work plus indirect accumulation.
    """
    if nodes_per_elem < 2:
        raise ConfigurationError("nodes_per_elem must be >= 2")
    return LoopKernel(
        name="fem-element-assembly",
        flops=40.0,
        fma_fraction=0.7,
        bytes_load=10 * FP64_BYTES,
        bytes_store=3 * FP64_BYTES,
        working_set_bytes=1 * 1024 * 1024,
        streaming_fraction=0.45,
        vec_fraction=0.7,
        ilp=5.0,
        contiguous_fraction=0.55,
    )
