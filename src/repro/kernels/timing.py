"""ECM-style per-core timing of a compiled kernel.

The per-iteration time is the max over the throughput-limited resources —
FP pipes, L1, L2, DRAM — plus a non-overlappable latency exposure for
gather accesses::

    T_iter = max(T_compute, T_L1, T_L2, T_DRAM) + T_gather_latency

This full-overlap roofline form is what the paper's own analysis section
reasons with (compute-bound vs. memory-bound attribution), and it reproduces
the documented A64FX behaviours:

* memory-bound kernels scale with the per-thread HBM2 share (so thread
  placement across CMGs matters),
* low-ILP kernels are pipeline-fill limited (long FP latency, small OoO
  window) until the compiler's instruction scheduling raises the fill,
* gather-heavy kernels pay both partial 256-byte-line utilization and the
  latency term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.kernels.workingset import level_traffic
from repro.machine.cache import CacheSpec
from repro.machine.core import CoreSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.compile.compiler import CompiledKernel


@dataclass(frozen=True)
class PhaseTiming:
    """Result of timing one compute phase on one core.

    ``l1_bytes`` / ``l2_bytes`` are the total bytes the L1D and L2 carried
    for the phase and ``iters`` its iteration count — recorded so the
    simulated PMU (:mod:`repro.perf.events`) can derive cache-miss and
    traffic counters from exactly the numbers the timing used, never from
    a parallel re-computation that could silently drift.
    """

    seconds: float
    bound: str                 # "compute" | "l1" | "l2" | "dram" | "latency"
    components: dict[str, float]
    flops: float               # total FLOPs executed in the phase
    dram_bytes: float          # total DRAM traffic of the phase
    l1_bytes: float = 0.0      # total bytes moved through L1D
    l2_bytes: float = 0.0      # total bytes the L2 carried (= L1D miss bytes)
    iters: float = 0.0         # iteration count the phase was timed for

    @property
    def achieved_flops_per_s(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds

    @property
    def dram_bandwidth(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.dram_bytes / self.seconds

    def scaled(self, factor: float) -> "PhaseTiming":
        """This timing with every time component stretched by ``factor``.

        Models a uniform slowdown of the executing core — frequency and
        all bandwidths derated together — so the resource *balance* (and
        with it ``bound``) is unchanged while seconds and the per-level
        components scale.  Work counts (flops, bytes, iters) are the same
        work, done slower.  The straggler-injection transform
        (:mod:`repro.faults`) and node-slowdown modelling both use this.
        """
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        if factor == 1.0:
            return self
        import dataclasses

        return dataclasses.replace(
            self,
            seconds=self.seconds * factor,
            components={k: v * factor for k, v in self.components.items()},
        )


def phase_time(
    ck: "CompiledKernel",
    iters: float,
    core: CoreSpec,
    l1: CacheSpec,
    l2: CacheSpec,
    *,
    mem_bandwidth_share: float,
    l2_bandwidth_share: float,
    mem_latency_s: float,
    working_set_scale: float = 1.0,
) -> PhaseTiming:
    """Time ``iters`` iterations of ``ck`` on one core.

    ``mem_bandwidth_share`` / ``l2_bandwidth_share`` are the bytes/s this
    thread gets from its (possibly contended, possibly remote) memory and L2
    — the runtime layer computes them from the placement.
    """
    if iters < 0:
        raise ConfigurationError("iteration count must be non-negative")
    if mem_bandwidth_share <= 0 or l2_bandwidth_share <= 0:
        raise ConfigurationError("bandwidth shares must be positive")
    if iters == 0:
        return PhaseTiming(0.0, "compute", {}, 0.0, 0.0)

    k = ck.kernel
    traffic = level_traffic(k, l1, l2, working_set_scale)

    # ------------------------------------------------------------------
    # compute throughput
    # ------------------------------------------------------------------
    fill = core.pipeline_fill(ck.ilp_effective, ck.scheduling_boost)
    t_compute_cycles = 0.0
    if k.flops > 0:
        vec_flops = k.flops * ck.vec_fraction_achieved
        scalar_flops = k.flops - vec_flops
        lanes = ck.simd_bits_used // (k.element_bytes * 8)
        vec_fpc = core.flops_per_cycle(
            k.fma_fraction, vector=True, lanes=max(1, lanes)
        ) * fill
        scalar_fpc = core.flops_per_cycle(k.fma_fraction, vector=False) * fill
        t_compute_cycles = vec_flops / vec_fpc + scalar_flops / scalar_fpc
    if k.int_ops > 0:
        # Byte-SIMD integer loops gain lanes, but at modest real-world
        # efficiency (predication, packing overheads): ~40% of the lane
        # count materializes, which matches the 2-3x compiler-tuning gains
        # the paper reports for the integer-heavy miniapps.
        lanes = max(1.0, core.simd_lanes_fp64 * 0.4) if ck.int_vectorized else 1.0
        int_per_cycle = core.scalar_ipc * lanes
        # Integer and FP work issue on different ports: partial overlap.
        t_compute_cycles = max(t_compute_cycles, k.int_ops / int_per_cycle)
    t_compute = t_compute_cycles / core.freq_hz

    # ------------------------------------------------------------------
    # data-movement throughput per level
    # ------------------------------------------------------------------
    t_l1 = traffic.l1_bytes / (core.l1d_bytes_per_cycle * core.freq_hz)
    t_l2 = traffic.l2_bytes / l2_bandwidth_share
    # Streaming DRAM traffic without hardware/software prefetch exposes
    # latency; model as a bandwidth derating.
    prefetch_derate = 0.6 + 0.4 * ck.prefetch_quality
    t_dram = traffic.dram_bytes / (mem_bandwidth_share * prefetch_derate)

    # ------------------------------------------------------------------
    # gather latency exposure (not overlappable by prefetch)
    # ------------------------------------------------------------------
    t_latency = 0.0
    if k.contiguous_fraction < 1.0 and k.bytes_load > 0:
        gathers = (k.bytes_load / 8.0) * (1.0 - k.contiguous_fraction)
        # Only the gathers that miss L1 expose latency; of those, the L2
        # miss fraction pays memory latency, the rest pays L2 latency.
        exposed = gathers * traffic.l1_miss_fraction
        avg_latency = (
            traffic.l2_miss_fraction * mem_latency_s
            + (1.0 - traffic.l2_miss_fraction) * l2.latency_cycles / core.freq_hz
        )
        # Outstanding-miss parallelism plus partial overlap with the
        # throughput-bound stream hide most of the exposure.
        mlp = max(4.0, core.ooo_window / 8.0)
        overlap = 0.5
        t_latency = exposed * avg_latency * overlap / mlp

    per_iter = {
        "compute": t_compute,
        "l1": t_l1,
        "l2": t_l2,
        "dram": t_dram,
    }
    bound = max(per_iter, key=per_iter.__getitem__)
    t_iter = per_iter[bound] + t_latency
    if t_latency > per_iter[bound]:
        bound = "latency"

    components = {name: v * iters for name, v in per_iter.items()}
    components["latency"] = t_latency * iters
    return PhaseTiming(
        seconds=t_iter * iters,
        bound=bound,
        components=components,
        flops=k.flops * iters,
        dram_bytes=traffic.dram_bytes * iters,
        l1_bytes=traffic.l1_bytes * iters,
        l2_bytes=traffic.l2_bytes * iters,
        iters=iters,
    )
