"""Kernel descriptor IR and the per-core analytic timing model.

A :class:`~repro.kernels.kernel.LoopKernel` describes one inner loop of a
miniapp — FLOPs, memory traffic, reuse footprint, vectorizability, and
instruction-level parallelism per iteration.  The compiler model
(:mod:`repro.compile`) lowers it to a
:class:`~repro.compile.compiler.CompiledKernel`, and
:func:`~repro.kernels.timing.phase_time` turns (compiled kernel x iteration
count x hardware shares) into seconds with a bottleneck attribution.

:mod:`repro.kernels.presets` provides the recurring kernel classes of the
Fiber suite (stream, stencil, DGEMM, SpMV, gather-update, integer compare),
which the miniapp skeletons parameterize.
"""

from repro.kernels.kernel import LoopKernel
from repro.kernels.timing import PhaseTiming, phase_time
from repro.kernels.workingset import level_traffic
from repro.kernels import presets

__all__ = ["LoopKernel", "PhaseTiming", "phase_time", "level_traffic", "presets"]
