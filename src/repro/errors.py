"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can guard a whole experiment sweep with a
single ``except ReproError`` without swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """An experiment / machine / placement configuration is inconsistent."""


class PlacementError(ConfigurationError):
    """Ranks or threads cannot be mapped onto the requested hardware."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class DeadlockError(SimulationError):
    """All ranks are blocked and no event can make progress."""


class CommunicatorError(SimulationError):
    """Misuse of the simulated MPI API (bad rank, tag, or buffer)."""


class EngineDisagreement(SimulationError):
    """Analytic and event engines disagree beyond tolerance.

    Raised by the ``auto`` engine's seeded cross-validation; carries the
    offending config and both rows so the caller can inspect the gap.
    """

    def __init__(self, message: str, config=None,
                 analytic=None, event=None) -> None:
        super().__init__(message)
        self.config = config
        self.analytic = analytic
        self.event = event


class CompileError(ReproError):
    """The compiler model cannot lower a kernel with the given options."""


class DatasetError(ReproError):
    """A miniapp dataset descriptor is unknown or malformed."""


class LintError(ReproError):
    """The pre-flight static analyzer found blocking diagnostics.

    ``diagnostics`` carries the structured
    :class:`~repro.analysis.diagnostics.Diagnostic` records behind the
    rendered message.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class AdviseError(ReproError):
    """The pre-flight performance advisor found blocking diagnostics.

    Raised by the opt-in advise gate in :mod:`repro.core.runner` when a
    config's static performance analysis reports findings at or above
    the gate's severity cut (``advise="warn"`` blocks on errors,
    ``advise="error"`` blocks on warnings too).  ``diagnostics`` carries
    the structured records behind the rendered message.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class ServiceError(ReproError):
    """Base class for sweep-service (``repro serve``) failures."""


class ServiceUnavailable(ServiceError):
    """The sweep service cannot be reached (not running, draining for
    shutdown, or it died mid-conversation).

    Raised by the client SDK after its connect retries are exhausted —
    callers get a typed error with ``retryable`` set instead of a hung
    socket, so they can back off and resubmit.
    """

    def __init__(self, message: str, *, retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable


class ServiceOverloaded(ServiceUnavailable):
    """The sweep service refused a submission: its admission queue is
    full (``repro serve --max-queued``).

    The wire form is an ``error`` frame with the stable code
    ``"overloaded"``; the client SDK raises this type and, by default,
    retries with seeded-jitter exponential backoff
    (:meth:`~repro.service.client.ServiceClient.run_sweep`).  Always
    retryable: the queue drains as jobs finish.

    ``queue_depth``/``max_queued`` snapshot the server's admission
    state at rejection time; ``retry_after_s`` is the server's backoff
    hint (both best-effort — ``0`` when the server predates them).
    """

    def __init__(self, message: str, *, queue_depth: int = 0,
                 max_queued: int = 0, retry_after_s: float = 0.0) -> None:
        super().__init__(message, retryable=True)
        self.queue_depth = queue_depth
        self.max_queued = max_queued
        self.retry_after_s = retry_after_s


class ProtocolError(ServiceError):
    """A malformed or protocol-version-incompatible service frame."""


class JobError(ServiceError):
    """A submitted job reached a terminal state other than completed.

    ``job`` carries the final job record dict (state, counts, error)
    the server reported.
    """

    def __init__(self, message: str, job: dict | None = None) -> None:
        super().__init__(message)
        self.job = dict(job) if job else {}
