"""The RunContext: one recorded run = one self-describing directory.

``results/runs/<run_id>/`` holds:

* ``manifest.json`` — the job spec + provenance (:mod:`.manifest`);
* ``metrics.jsonl`` — streamed counters/gauges/histograms (:mod:`.metrics`);
* ``spans.jsonl`` — parent-linked orchestration spans (:mod:`.spans`);
* ``summary.json`` — the result rows, in the same schema
  :func:`repro.core.persistence.save_sweep` has always used, so
  ``repro reproduce`` can diff a replay against it with stock loaders.

:func:`run_scope` is the integration point the runner uses: it opens a
context when telemetry is enabled and no run is active, degrades to a
plain span when a run already is (nested sweeps inside ``repro report``
builders), and finalizes status/summary on the way out — including the
failure path, so a crashed sweep leaves a ``status="failed"`` manifest
with the exception named rather than a silent ``running`` husk.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.telemetry import manifest as manifest_mod
from repro.telemetry import state
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.experiment import ExperimentConfig
    from repro.core.runner import SweepResult
    from repro.faults.plan import FaultPlan


def new_run_id() -> str:
    """Sortable, collision-resistant run id (timestamp + random tail)."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


def find_resumable(root: Path, key: str) -> str | None:
    """Latest recorded run under ``root`` with the given sweep key.

    This is how a resumed sweep finds the directory it should re-enter
    instead of minting a fresh run id.  Unreadable manifests are skipped
    — resume should never be blocked by one corrupt neighbor.
    """
    best: tuple[str, str] | None = None
    if not root.is_dir():
        return None
    for entry in root.iterdir():
        if not entry.is_dir():
            continue
        try:
            mf = manifest_mod.read_manifest(entry)
        except Exception:  # noqa: BLE001 - skip foreign/corrupt dirs
            continue
        if mf.get("sweep_key") != key:
            continue
        created = str(mf.get("created") or "")
        if best is None or (created, entry.name) > best:
            best = (created, entry.name)
    return best[1] if best is not None else None


class RunContext:
    """Live recording state for one run directory."""

    __slots__ = ("run_id", "directory", "manifest", "metrics", "spans",
                 "_t0", "_sweep", "_summary_name", "_rows", "_errors")

    def __init__(self, directory: str | Path,
                 manifest: dict[str, Any]) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.run_id: str = manifest["run_id"]
        manifest_mod.write_manifest(self.directory, manifest)
        self.metrics = MetricsRegistry(
            self.directory / manifest_mod.METRICS_FILENAME)
        self.spans = SpanRecorder(
            self.directory / manifest_mod.SPANS_FILENAME)
        self._t0 = time.perf_counter()
        self._sweep: "SweepResult | None" = None
        self._summary_name: str = manifest["name"]
        self._rows: list[Any] = []
        self._errors: list[Any] = []

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, *, kind: str, name: str,
             configs: list["ExperimentConfig"], engine: str,
             workers: int = 1, resume: bool = False,
             cache_dir: str | None = None, advise: str | None = None,
             fault_plan: "FaultPlan | None" = None,
             reproduces: str | None = None,
             results_dir: str | Path | None = None) -> "RunContext":
        """Create (or, with ``resume=True``, re-enter) a run directory."""
        root = state.runs_root(results_dir)
        manifest = manifest_mod.build_manifest(
            run_id=new_run_id(), kind=kind, name=name, configs=configs,
            engine=engine, workers=workers, cache_dir=cache_dir,
            advise=advise, fault_plan=fault_plan, reproduces=reproduces)
        if resume:
            prior = find_resumable(root, manifest["sweep_key"])
            if prior is not None:
                # same directory, same run_id; metrics/spans append, the
                # manifest records the lineage explicitly
                old = manifest_mod.read_manifest(root / prior)
                manifest["run_id"] = old["run_id"]
                manifest["created"] = old["created"]
                manifest["resumed_from"] = old["run_id"]
                manifest["status"] = "running"
        directory = root / manifest["run_id"]
        ctx = cls(directory, manifest)
        ctx.metrics.count("run.opened")
        if manifest["resumed_from"]:
            ctx.metrics.count("run.resumed")
        return ctx

    # ------------------------------------------------------------------
    def attach_sweep(self, sweep: "SweepResult") -> None:
        """Hand the finished sweep over for the summary snapshot."""
        self._sweep = sweep
        self._summary_name = sweep.name
        self._rows = list(sweep.rows)
        self._errors = list(sweep.errors)

    def attach_rows(self, name: str, rows: list[Any],
                    errors: list[Any] | None = None) -> None:
        """Single-config variant of :meth:`attach_sweep`."""
        self._summary_name = name
        self._rows = list(rows)
        self._errors = list(errors or [])

    # ------------------------------------------------------------------
    def _write_summary(self) -> None:
        from repro.core.persistence import save_sweep
        from repro.core.runner import SweepResult

        sweep = SweepResult(self._summary_name)
        for row in self._rows:
            sweep.add(row)
        save_sweep(sweep,
                   self.directory / manifest_mod.SUMMARY_FILENAME)

    def finalize(self, status: str = "completed",
                 error: BaseException | None = None) -> None:
        """Seal the run: summary rows, closing metrics, final manifest."""
        wall = time.perf_counter() - self._t0
        self.metrics.gauge("run.wall_seconds", wall)
        self.metrics.gauge("sweep.rows", len(self._rows))
        self.metrics.gauge("sweep.errors", len(self._errors))
        if wall > 0:
            self.metrics.gauge("sweep.rows_per_s", len(self._rows) / wall)
        self._write_summary()
        self.manifest["status"] = status
        if error is not None:
            self.manifest["error"] = \
                f"{type(error).__name__}: {error}"
        self.manifest["finished"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        self.manifest["wall_seconds"] = round(wall, 6)
        self.manifest["n_rows"] = len(self._rows)
        self.manifest["n_errors"] = len(self._errors)
        self.manifest["errors"] = [
            {"config": err.config.label(), "error": err.error,
             "message": err.message}
            for err in self._errors
        ]
        manifest_mod.write_manifest(self.directory, self.manifest)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<RunContext {self.run_id} at {self.directory}>"


@contextmanager
def run_scope(*, kind: str, name: str,
              configs: list["ExperimentConfig"], engine: str,
              workers: int = 1, resume: bool = False,
              cache: Any = None, advise: str | None = None,
              fault_plan: "FaultPlan | None" = None,
              reproduces: str | None = None) -> Iterator[RunContext | None]:
    """Open a run around a sweep/config execution.

    Yields the new :class:`RunContext` (now the process's active run),
    or ``None`` when telemetry is disabled **or** a run is already
    active — in the nested case the block is still wrapped in a span of
    the enclosing run, so a multi-sweep report shows each sweep as a
    phase rather than scattering sibling run directories.
    """
    if not state.enabled():
        yield None
        return
    enclosing = state.current_run()
    if enclosing is not None:
        with enclosing.spans.span(kind, label=name, engine=engine,
                                  configs=len(configs)):
            yield None
        return
    directory = getattr(cache, "directory", None)
    ctx = RunContext.open(
        kind=kind, name=name, configs=configs, engine=engine,
        workers=workers, resume=resume,
        cache_dir=str(directory) if directory is not None else None,
        advise=advise, fault_plan=fault_plan, reproduces=reproduces)
    state.activate(ctx)
    try:
        with ctx.spans.span(kind, label=name, engine=engine,
                            configs=len(configs)):
            yield ctx
    except BaseException as exc:
        ctx.finalize(status="failed", error=exc)
        raise
    else:
        ctx.finalize(status="completed")
    finally:
        state.deactivate(ctx)
