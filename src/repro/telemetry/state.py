"""Telemetry enablement and the active-run registry.

One process holds at most one **active** :class:`~repro.telemetry.run.
RunContext` — the run every counter increment and span lands in.  The
registry is deliberately tiny: the hot-path question ("is anything
recording?") must cost one module-global read, because it is asked on
every cache probe of an uninstrumented sweep too.

Enablement mirrors the lint/advise gates: the ``REPRO_TELEMETRY``
environment variable is the source of truth (so it travels into sweep
worker processes), with :func:`set_telemetry` as the programmatic,
env-propagating switch and ``--no-telemetry`` as the CLI spelling.
Worker processes additionally call :func:`suppress_in_worker` (the
process-pool initializer) so a forked child never appends to the
parent's run files — orchestration telemetry is a parent-side story.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.telemetry.run import RunContext

#: Environment variable switching telemetry off (``off``/``0``/``no``/
#: ``false``, case-insensitive); anything else — including unset — is on.
ENV_TELEMETRY = "REPRO_TELEMETRY"

#: Environment variable overriding the results root (default ``results``
#: under the current directory); run directories live in ``<root>/runs``.
ENV_RESULTS_DIR = "REPRO_RESULTS_DIR"

_OFF_VALUES = frozenset({"off", "0", "no", "false"})

#: Suppression depth: > 0 silences telemetry regardless of the
#: environment (worker processes, ``repro reproduce`` replays).
_suppressed = 0

_active: "RunContext | None" = None


def enabled() -> bool:
    """Is telemetry recording anything in this process right now?"""
    if _suppressed:
        return False
    return os.environ.get(ENV_TELEMETRY, "").strip().lower() \
        not in _OFF_VALUES


def set_telemetry(on: bool) -> None:
    """Switch telemetry globally, propagating to worker processes."""
    if on:
        os.environ.pop(ENV_TELEMETRY, None)
    else:
        os.environ[ENV_TELEMETRY] = "off"


def results_root() -> Path:
    """``$REPRO_RESULTS_DIR``, else ``./results``."""
    env = os.environ.get(ENV_RESULTS_DIR)
    return Path(env).expanduser() if env else Path("results")


def set_results_dir(path: str | Path) -> None:
    """Set the results root, propagating to worker processes."""
    os.environ[ENV_RESULTS_DIR] = str(path)


def runs_root(results_dir: str | Path | None = None) -> Path:
    """The directory holding one subdirectory per recorded run."""
    base = Path(results_dir) if results_dir is not None else results_root()
    return base / "runs"


def current_run() -> "RunContext | None":
    """The active run, or ``None`` (disabled, suppressed, or no run)."""
    if _suppressed:
        return None
    return _active


def activate(ctx: "RunContext") -> None:
    """Install ``ctx`` as the process's active run (must be free)."""
    global _active
    if _active is not None:
        raise RuntimeError(
            f"run {_active.run_id} is already active; nested runs must "
            f"record spans into it instead"
        )
    _active = ctx


def deactivate(ctx: "RunContext") -> None:
    """Clear the active run (tolerates a stale/foreign ``ctx``)."""
    global _active
    if _active is ctx:
        _active = None


@contextmanager
def suppressed() -> Iterator[None]:
    """Silence telemetry for a block (used by ``repro reproduce`` so a
    replay never records itself into the run it is checking)."""
    global _suppressed
    _suppressed += 1
    try:
        yield
    finally:
        _suppressed -= 1


def suppress_in_worker() -> None:
    """Process-pool initializer: permanently silence telemetry in a
    sweep worker (the parent records the orchestration story)."""
    global _suppressed
    _suppressed += 1
