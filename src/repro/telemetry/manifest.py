"""Run manifests: the self-describing job spec of every recorded run.

A manifest pins everything needed to re-execute a run and to audit the
numbers it produced: the full config snapshots, the model fingerprint
the result cache keys on, the engine and worker count, the fault-plan
(verbatim plus digest), package/python/git versions, and the resume
lineage.  ``repro reproduce`` consumes nothing but the manifest and the
recorded ``summary.json`` — if the two plus the current model agree, the
run is reproducible; if not, the drift is named.

Manifests are rewritten atomically (temp sibling + ``os.replace``) on
every status transition, so readers never observe a half-written file.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.experiment import ExperimentConfig
    from repro.faults.plan import FaultPlan

#: On-disk manifest format version.
MANIFEST_FORMAT = 1

#: File names inside every run directory.
MANIFEST_FILENAME = "manifest.json"
METRICS_FILENAME = "metrics.jsonl"
SPANS_FILENAME = "spans.jsonl"
SUMMARY_FILENAME = "summary.json"

_git_memo: dict[str, Any] | None = None
_git_loaded = False


def sweep_key(kind: str, name: str, configs: list["ExperimentConfig"],
              engine: str) -> str:
    """Content digest identifying "the same sweep, run again".

    Resume uses it to find the run directory a restarted sweep should
    re-enter: same kind, sweep name, ordered config digests, and engine.
    """
    from repro.core.cache import config_digest

    blob = json.dumps(
        {"kind": kind, "name": name, "engine": engine,
         "configs": [config_digest(c) for c in configs]},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def git_info() -> dict[str, Any] | None:
    """Best-effort git provenance (commit + dirty flag), memoized.

    Returns ``None`` outside a repository or without a git binary — a
    manifest is still valid, just less traceable.
    """
    global _git_memo, _git_loaded
    if _git_loaded:
        return _git_memo
    _git_loaded = True
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip() != ""
    except (OSError, subprocess.SubprocessError):
        _git_memo = None
        return None
    _git_memo = {"commit": commit, "dirty": dirty}
    return _git_memo


def fault_plan_record(plan: "FaultPlan | None") -> dict[str, Any] | None:
    """Manifest entry for a fault plan: the verbatim plan plus its
    digest (``None`` for no plan / an empty plan)."""
    if plan is None or plan.empty:
        return None
    return {"digest": plan.digest(), "plan": plan.to_dict(),
            "seed": plan.seed}


def build_manifest(*, run_id: str, kind: str, name: str,
                   configs: list["ExperimentConfig"], engine: str,
                   workers: int = 1, cache_dir: str | None = None,
                   advise: str | None = None,
                   fault_plan: "FaultPlan | None" = None,
                   reproduces: str | None = None) -> dict[str, Any]:
    """Assemble a fresh ``status="running"`` manifest dict."""
    import repro
    from repro.core.cache import model_fingerprint
    from repro.core.persistence import config_to_dict

    now = time.time()
    return {
        "format": MANIFEST_FORMAT,
        "run_id": run_id,
        "kind": kind,
        "name": name,
        "status": "running",
        "error": None,
        # microsecond resolution so same-second runs still order
        # deterministically in `repro runs` / resume lookup
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(now))
        + f".{int(now * 1e6) % 1_000_000:06d}",
        "finished": None,
        "wall_seconds": None,
        "sweep_key": sweep_key(kind, name, configs, engine),
        "engine": engine,
        "workers": workers,
        "resumed_from": None,
        "reproduces": reproduces,
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "git": git_info(),
        "model_fingerprint": model_fingerprint(),
        "cache_dir": cache_dir,
        "advise": advise,
        "fault_plan": fault_plan_record(fault_plan),
        "seeds": {"fault_plan": fault_plan.seed}
        if fault_plan is not None and not fault_plan.empty else {},
        "configs": [config_to_dict(c) for c in configs],
        "n_rows": None,
        "n_errors": None,
        "errors": [],
        "files": {"metrics": METRICS_FILENAME, "spans": SPANS_FILENAME,
                  "summary": SUMMARY_FILENAME},
    }


def write_manifest(directory: str | Path, manifest: dict[str, Any]) -> Path:
    """Atomically (re)write ``manifest.json`` in ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_FILENAME
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".manifest.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_manifest(directory: str | Path) -> dict[str, Any]:
    """Load and sanity-check the manifest of one run directory."""
    path = Path(directory) / MANIFEST_FILENAME
    try:
        manifest = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(
            f"no run manifest at {path}: {exc}") from None
    except ValueError as exc:
        raise ConfigurationError(
            f"unreadable run manifest {path}: {exc}") from None
    if not isinstance(manifest, dict):
        raise ConfigurationError(f"{path}: manifest is not a JSON object")
    fmt = manifest.get("format")
    if fmt != MANIFEST_FORMAT:
        raise ConfigurationError(
            f"{path}: manifest format {fmt!r} is not supported "
            f"(this build reads format {MANIFEST_FORMAT})"
        )
    for field in ("run_id", "kind", "name", "configs", "engine"):
        if field not in manifest:
            raise ConfigurationError(f"{path}: manifest missing {field!r}")
    return manifest


def manifest_configs(manifest: dict[str, Any]) -> list["ExperimentConfig"]:
    """Rebuild the config objects a manifest snapshot describes."""
    from repro.core.persistence import config_from_dict

    return [config_from_dict(d) for d in manifest["configs"]]
