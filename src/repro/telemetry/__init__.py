"""repro.telemetry — structured observability for the sweep pipeline.

Every ``run_config``/``run_sweep``/CLI invocation (with telemetry on,
the default) records itself as a self-describing artifact directory
``results/runs/<run_id>/`` containing a manifest, streamed metrics,
orchestration spans, and the result rows — see DESIGN.md's telemetry
section for the schemas and the stable metric vocabulary.

The helpers here are the instrumentation surface the rest of the
codebase uses; all of them are near-free no-ops when no run is active,
so an uninstrumented path (``REPRO_TELEMETRY=off`` / ``--no-telemetry``
/ worker processes) costs one module-global check per call site::

    from repro import telemetry

    telemetry.count("cache.hit")
    with telemetry.span("gate.lint", config=label):
        ...
    telemetry.observe("gate.lint.seconds", dt)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.telemetry.manifest import (
    MANIFEST_FILENAME,
    METRICS_FILENAME,
    SPANS_FILENAME,
    SUMMARY_FILENAME,
    read_manifest,
)
from repro.telemetry.run import RunContext, run_scope
from repro.telemetry.spans import Span
from repro.telemetry.state import (
    ENV_RESULTS_DIR,
    ENV_TELEMETRY,
    current_run,
    enabled,
    results_root,
    runs_root,
    set_results_dir,
    set_telemetry,
    suppress_in_worker,
    suppressed,
)

__all__ = [
    "ENV_RESULTS_DIR", "ENV_TELEMETRY",
    "MANIFEST_FILENAME", "METRICS_FILENAME", "SPANS_FILENAME",
    "SUMMARY_FILENAME",
    "RunContext", "Span",
    "count", "current_run", "enabled", "gauge", "observe",
    "read_manifest", "results_root", "run_scope", "runs_root",
    "set_results_dir", "set_telemetry", "span", "suppress_in_worker",
    "suppressed",
]


def count(name: str, n: float = 1, **labels: Any) -> None:
    """Increment a counter on the active run (no-op without one)."""
    run = current_run()
    if run is not None:
        run.metrics.count(name, n, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the active run (no-op without one)."""
    run = current_run()
    if run is not None:
        run.metrics.gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation on the active run (no-op
    without one)."""
    run = current_run()
    if run is not None:
        run.metrics.observe(name, value, **labels)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Open an orchestration span on the active run (no-op without
    one — yields ``None`` so callers can guard attribute updates)."""
    run = current_run()
    if run is None:
        yield None
        return
    with run.spans.span(name, **attrs) as sp:
        yield sp
