"""Orchestration spans: parent-linked phase timings for one run.

Where :mod:`repro.runtime.timeline` traces what the *simulated* ranks
did, spans trace what the *orchestrator* did: sweep → pool pass →
config → gate/score/cache phases, each with a wall-clock start and
duration relative to the run's start.  Spans nest through an explicit
stack in the recorder (the sweep pipeline is single-threaded on the
parent side), and every record carries its parent's id, so the tree is
reconstructible from the flat ``spans.jsonl``.

:func:`spans_to_chrome_trace` exports the tree as a Chrome
``chrome://tracing`` / Perfetto object — the orchestration complement
to the per-rank traces ``repro profile --trace`` writes.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: On-disk span record format version.
SPANS_FORMAT = 1


@dataclass
class Span:
    """One open (or finished) orchestration phase."""

    span_id: str
    parent_id: str | None
    name: str
    start_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    end_s: float | None = None

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span after it opened."""
        self.attrs.update(attrs)


class SpanRecorder:
    """Span sink for one run; appends one JSONL record per closed span.

    A resumed run reopens the same file in append mode; ``session``
    (a per-recorder token baked into every span id) keeps ids from two
    process lifetimes distinct without re-reading the file.
    """

    __slots__ = ("path", "session", "_origin", "_next", "_stack")

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.session = f"{os.getpid():x}-{time.time_ns() & 0xFFFFFF:06x}"
        self._origin = time.perf_counter()
        self._next = 0
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def open(self, name: str, **attrs: Any) -> Span:
        """Open a span as the child of the innermost open span."""
        self._next += 1
        span = Span(
            span_id=f"{self.session}:{self._next}",
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start_s=self._now(),
            attrs=dict(attrs),
        )
        self._stack.append(span)
        return span

    def close(self, span: Span) -> None:
        """Close ``span`` (and anything left open beneath it) and
        persist the record."""
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        span.end_s = self._now()
        self._write(span)

    def _write(self, span: Span) -> None:
        if self.path is None:
            return
        rec: dict[str, Any] = {
            "format": SPANS_FORMAT,
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start_s": span.start_s,
            "dur_s": span.duration_s,
        }
        if span.attrs:
            rec["attrs"] = _json_safe(span.attrs)
        line = json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def emit(self, name: str, start_s: float, end_s: float,
             parent: Span | None = None, **attrs: Any) -> Span:
        """Record an already-timed span without stack participation.

        Concurrent orchestrators (the sweep service runs many jobs on
        one event loop) cannot use the ``with``-stack discipline — their
        phases interleave.  ``emit`` lets them report a completed phase
        with explicit wall-clock bounds (seconds on this recorder's
        clock, i.e. :func:`time.perf_counter` minus the recorder origin)
        and an explicit parent.
        """
        self._next += 1
        span = Span(
            span_id=f"{self.session}:{self._next}",
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_s=start_s,
            attrs=dict(attrs),
            end_s=end_s,
        )
        self._write(span)
        return span

    def now(self) -> float:
        """The current time on this recorder's span clock (for
        :meth:`emit` bounds)."""
        return self._now()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with recorder.span("gate.lint", config=...):`` — the usual
        spelling; closes (and records) on exit, exception or not."""
        sp = self.open(name, **attrs)
        try:
            yield sp
        except BaseException as exc:
            sp.set(error=type(exc).__name__)
            raise
        finally:
            self.close(sp)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<SpanRecorder {self.path} open={len(self._stack)}>"


def _json_safe(attrs: dict[str, Any]) -> dict[str, Any]:
    """Coerce attribute values to JSON-safe primitives (repr fallback)."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def read_spans(path: str | Path) -> list[dict[str, Any]]:
    """Load span records from ``spans.jsonl`` (ordered as written).

    Missing file → empty list; torn/corrupt lines are skipped.
    """
    spans: list[dict[str, Any]] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return spans
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue
        if not isinstance(rec, dict) or rec.get("format") != SPANS_FORMAT:
            continue
        if any(key not in rec for key in ("name", "start_s", "dur_s")):
            continue
        spans.append(rec)
    return spans


def spans_to_chrome_trace(spans: list[dict[str, Any]],
                          run_id: str = "") -> dict[str, Any]:
    """Export span records as a Chrome trace-event JSON object.

    All spans share one pid/tid (the orchestrator); Chrome nests the
    ``ph: "X"`` slices by time containment, which matches the recorder's
    stack discipline exactly.
    """
    events: list[dict[str, Any]] = [{
        "name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "orchestrator"},
    }]
    for rec in spans:
        event: dict[str, Any] = {
            "name": str(rec["name"]),
            "cat": "orchestration",
            "ph": "X",
            "pid": 0,
            "tid": 0,
            "ts": float(rec["start_s"]) * 1e6,
            "dur": float(rec["dur_s"]) * 1e6,
        }
        args = dict(rec.get("attrs") or {})
        args["span"] = rec.get("id")
        if rec.get("parent"):
            args["parent"] = rec["parent"]
        event["args"] = args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run": run_id, "source": "repro.telemetry"},
    }
