"""Lightweight counter/gauge/histogram registry streaming ``metrics.jsonl``.

Metric names form a **stable vocabulary** (documented in DESIGN.md):
reports, CI gates, and future dashboards key on them, so renaming one is
a breaking change.  The registry does two things per event:

* update an in-memory aggregate (so a live ``RunContext`` can summarize
  itself without re-reading its own file);
* append one JSONL record to ``metrics.jsonl`` with a single ``O_APPEND``
  ``write`` — the same torn-line-tolerant idiom as the result cache, so
  concurrent appenders interleave whole lines and a killed run loses at
  most one truncated record.

Readers rebuild aggregates with :func:`read_metrics`; both sides skip
corrupt lines instead of failing.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: On-disk metric record format version.
METRICS_FORMAT = 1

#: Metric kinds (the ``kind`` field of every record).
KINDS = ("counter", "gauge", "histogram")


@dataclass
class MetricAggregate:
    """Running aggregate of one metric name."""

    name: str
    kind: str
    count: int = 0
    total: float = 0.0
    last: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    #: Histogram observations (kept for percentile queries; counters and
    #: gauges leave it empty).
    values: list[float] = field(default_factory=list)

    def update(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.last = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if self.kind == "histogram":
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over recorded observations."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name, "kind": self.kind, "count": self.count,
            "total": self.total, "last": self.last,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }
        if self.kind == "histogram":
            out["p50"] = self.percentile(50)
            out["p95"] = self.percentile(95)
        return out


class MetricsRegistry:
    """Process-side metric sink for one run.

    ``path=None`` keeps the registry memory-only (tests, dry contexts);
    otherwise every event is appended to the JSONL file as it happens,
    so an interrupted run keeps everything it measured.
    """

    __slots__ = ("path", "_aggregates")

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._aggregates: dict[str, MetricAggregate] = {}

    # ------------------------------------------------------------------
    def _record(self, name: str, kind: str, value: float,
                labels: dict[str, Any] | None) -> None:
        agg = self._aggregates.get(name)
        if agg is None:
            agg = self._aggregates[name] = MetricAggregate(name, kind)
        agg.update(value)
        if self.path is None:
            return
        rec: dict[str, Any] = {"format": METRICS_FORMAT, "t": time.time(),
                               "name": name, "kind": kind, "v": value}
        if labels:
            rec["labels"] = labels
        line = json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    def count(self, name: str, n: float = 1,
              **labels: Any) -> None:
        """Increment a monotonically accumulating counter by ``n``."""
        self._record(name, "counter", float(n), labels or None)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a point-in-time value (readers keep the last one)."""
        self._record(name, "gauge", float(value), labels or None)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation (e.g. a gate wall time)."""
        self._record(name, "histogram", float(value), labels or None)

    # ------------------------------------------------------------------
    def aggregates(self) -> dict[str, MetricAggregate]:
        """Live in-memory aggregates, keyed by metric name."""
        return dict(self._aggregates)

    def value(self, name: str, default: float = 0.0) -> float:
        """Counter total / gauge last / histogram total for ``name``."""
        agg = self._aggregates.get(name)
        if agg is None:
            return default
        return agg.last if agg.kind == "gauge" else agg.total

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<MetricsRegistry {self.path} metrics={len(self._aggregates)}>"


def read_metrics(path: str | Path) -> dict[str, MetricAggregate]:
    """Rebuild per-name aggregates from a ``metrics.jsonl`` file.

    Tolerates a missing file (empty dict) and skips torn/corrupt lines,
    mirroring the writer's crash-tolerance contract.
    """
    aggregates: dict[str, MetricAggregate] = {}
    try:
        text = Path(path).read_text()
    except OSError:
        return aggregates
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
            if rec.get("format") != METRICS_FORMAT:
                continue
            name = rec["name"]
            kind = rec["kind"]
            value = float(rec["v"])
        except (ValueError, KeyError, TypeError):
            continue  # torn write: keep what is intact
        if kind not in KINDS:
            continue
        agg = aggregates.get(name)
        if agg is None:
            agg = aggregates[name] = MetricAggregate(name, kind)
        agg.update(value)
    return aggregates
