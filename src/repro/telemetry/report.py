"""``repro runs`` / ``repro report`` — reading recorded run directories.

The report is assembled from the three files every run writes: the
manifest (provenance + status), ``metrics.jsonl`` aggregates (cache
efficiency, gate wall time, engine picks, pool resilience, fault
events, torn cache lines), and ``summary.json`` (the rows — sorted here
into the slowest-configs table).  Everything renders as text for humans
and as one JSON object for tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.telemetry import manifest as manifest_mod
from repro.telemetry import state
from repro.telemetry.metrics import MetricAggregate, read_metrics
from repro.telemetry.spans import read_spans, spans_to_chrome_trace


@dataclass(frozen=True)
class RunEntry:
    """One line of ``repro runs``."""

    run_id: str
    kind: str
    name: str
    status: str
    engine: str
    created: str
    n_rows: int | None
    n_errors: int | None
    wall_seconds: float | None
    resumed_from: str | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id, "kind": self.kind, "name": self.name,
            "status": self.status, "engine": self.engine,
            "created": self.created, "n_rows": self.n_rows,
            "n_errors": self.n_errors, "wall_seconds": self.wall_seconds,
            "resumed_from": self.resumed_from,
        }


def list_runs(results_dir: str | Path | None = None, *,
              kind: str | None = None, status: str | None = None,
              name: str | None = None) -> list[RunEntry]:
    """Recorded runs, oldest first; filters match exactly (``name``
    matches as a substring).  Unreadable directories are skipped."""
    root = state.runs_root(results_dir)
    entries: list[RunEntry] = []
    if not root.is_dir():
        return entries
    for entry in sorted(root.iterdir()):
        if not entry.is_dir():
            continue
        try:
            mf = manifest_mod.read_manifest(entry)
        except ConfigurationError:
            continue
        item = RunEntry(
            run_id=str(mf["run_id"]),
            kind=str(mf["kind"]),
            name=str(mf["name"]),
            status=str(mf.get("status") or "unknown"),
            engine=str(mf.get("engine") or "event"),
            created=str(mf.get("created") or ""),
            n_rows=mf.get("n_rows"),
            n_errors=mf.get("n_errors"),
            wall_seconds=mf.get("wall_seconds"),
            resumed_from=mf.get("resumed_from"),
        )
        if kind is not None and item.kind != kind:
            continue
        if status is not None and item.status != status:
            continue
        if name is not None and name not in item.name:
            continue
        entries.append(item)
    entries.sort(key=lambda e: (e.created, e.run_id))
    return entries


def render_runs(entries: list[RunEntry]) -> str:
    """The ``repro runs`` table."""
    if not entries:
        return "no recorded runs"
    header = (f"{'run id':<24} {'kind':<10} {'name':<20} {'status':<10} "
              f"{'engine':<9} {'rows':>5} {'errs':>5}  created")
    lines = [header, "-" * len(header)]
    for e in entries:
        rows = "-" if e.n_rows is None else str(e.n_rows)
        errs = "-" if e.n_errors is None else str(e.n_errors)
        resumed = "  (resumed)" if e.resumed_from else ""
        lines.append(
            f"{e.run_id:<24} {e.kind:<10} {e.name:<20} {e.status:<10} "
            f"{e.engine:<9} {rows:>5} {errs:>5}  {e.created}{resumed}")
    return "\n".join(lines)


def run_directory(run_id: str,
                  results_dir: str | Path | None = None) -> Path:
    """Resolve a run id (or unique prefix) to its directory."""
    root = state.runs_root(results_dir)
    exact = root / run_id
    if exact.is_dir():
        return exact
    matches = [p for p in root.iterdir()
               if p.is_dir() and p.name.startswith(run_id)] \
        if root.is_dir() else []
    if len(matches) == 1:
        return matches[0]
    if len(matches) > 1:
        names = ", ".join(sorted(p.name for p in matches))
        raise ConfigurationError(
            f"run id prefix {run_id!r} is ambiguous: {names}")
    raise ConfigurationError(
        f"no recorded run {run_id!r} under {root} "
        f"(try `repro runs` to list them)")


@dataclass
class RunReport:
    """Everything ``repro report`` shows for one run."""

    manifest: dict[str, Any]
    aggregates: dict[str, MetricAggregate]
    rows: list[Any]
    spans: list[dict[str, Any]]
    directory: Path

    # -- metric lookups ------------------------------------------------
    def metric(self, metric_name: str, default: float = 0.0) -> float:
        agg = self.aggregates.get(metric_name)
        if agg is None:
            return default
        return agg.last if agg.kind == "gauge" else agg.total

    def cache_hit_rate(self) -> float | None:
        hits = self.metric("cache.hit")
        misses = self.metric("cache.miss")
        if hits + misses <= 0:
            return None
        return hits / (hits + misses)

    def slowest(self, top: int = 5) -> list[Any]:
        return sorted(self.rows, key=lambda r: -r.elapsed)[:top]

    def fault_events(self) -> dict[str, float]:
        return {metric_name.removeprefix("faults."): agg.total
                for metric_name, agg in sorted(self.aggregates.items())
                if metric_name.startswith("faults.") and agg.total}

    # -- assembly ------------------------------------------------------
    @classmethod
    def load(cls, run_id: str,
             results_dir: str | Path | None = None) -> "RunReport":
        directory = run_directory(run_id, results_dir)
        manifest = manifest_mod.read_manifest(directory)
        aggregates = read_metrics(
            directory / manifest_mod.METRICS_FILENAME)
        spans = read_spans(directory / manifest_mod.SPANS_FILENAME)
        rows: list[Any] = []
        summary = directory / manifest_mod.SUMMARY_FILENAME
        if summary.exists():
            from repro.core.persistence import load_sweep

            rows = list(load_sweep(summary).rows)
        return cls(manifest=manifest, aggregates=aggregates, rows=rows,
                   spans=spans, directory=directory)

    # -- output --------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        from repro.core.persistence import row_to_dict

        return {
            "manifest": self.manifest,
            "metrics": {metric_name: agg.to_dict()
                        for metric_name, agg
                        in sorted(self.aggregates.items())},
            "cache_hit_rate": self.cache_hit_rate(),
            "slowest": [row_to_dict(r) for r in self.slowest()],
            "fault_events": self.fault_events(),
            "n_spans": len(self.spans),
        }

    def chrome_trace(self) -> dict[str, Any]:
        return spans_to_chrome_trace(self.spans,
                                     str(self.manifest["run_id"]))

    def render(self) -> str:
        mf = self.manifest
        lines = [
            f"run {mf['run_id']}  [{mf['kind']} {mf['name']!r}, "
            f"engine={mf['engine']}, status={mf['status']}]",
            f"  created {mf.get('created')}   wall "
            f"{_fmt_opt_s(mf.get('wall_seconds'))}   "
            f"rows {mf.get('n_rows')}   errors {mf.get('n_errors')}",
            f"  model fingerprint {mf.get('model_fingerprint')}   "
            f"repro {mf.get('repro_version')}   "
            f"python {mf.get('python')}",
        ]
        if mf.get("resumed_from"):
            lines.append(f"  resumed from {mf['resumed_from']}")
        if mf.get("reproduces"):
            lines.append(f"  reproduces {mf['reproduces']}")
        if mf.get("error"):
            lines.append(f"  error: {mf['error']}")

        rate = self.cache_hit_rate()
        hits, misses = self.metric("cache.hit"), self.metric("cache.miss")
        torn = self.metric("cache.torn_lines")
        cache_line = (f"  cache: {hits:.0f} hit(s) / {misses:.0f} miss(es)"
                      + (f" ({rate:.1%} hit rate)" if rate is not None
                         else ""))
        if torn:
            cache_line += f"; {torn:.0f} torn line(s) skipped on load"
        lines.append(cache_line)

        for gate in ("lint", "advise"):
            agg = self.aggregates.get(f"gate.{gate}.seconds")
            if agg is None or not agg.count:
                continue
            blocked = self.metric(f"gate.{gate}.blocked")
            lines.append(
                f"  gate {gate}: {agg.count} check(s), "
                f"{agg.total * 1e3:.2f} ms total "
                f"(max {agg.max * 1e3:.2f} ms)"
                + (f", {blocked:.0f} blocked" if blocked else ""))

        picks = {metric_name.removeprefix("engine.pick."): agg.total
                 for metric_name, agg in sorted(self.aggregates.items())
                 if metric_name.startswith("engine.pick.")}
        if picks:
            lines.append("  engine picks: " + ", ".join(
                f"{eng} x{total:.0f}" for eng, total in picks.items()))

        pool_bits = []
        for short, metric_name in (("restarts", "pool.restarts"),
                                   ("retries", "pool.retries"),
                                   ("serial fallbacks",
                                    "pool.serial_fallback"),
                                   ("quarantined", "sweep.quarantined")):
            total = self.metric(metric_name)
            if total:
                pool_bits.append(f"{short} {total:.0f}")
        if pool_bits:
            lines.append("  resilience: " + ", ".join(pool_bits))

        faults = self.fault_events()
        if faults:
            lines.append("  fault events: " + ", ".join(
                f"{event}={total:g}" for event, total in faults.items()))

        rps = self.aggregates.get("sweep.rows_per_s")
        if rps is not None and rps.count:
            lines.append(f"  throughput: {rps.last:.1f} rows/s")

        if mf.get("errors"):
            lines.append("  failed/quarantined configs:")
            for err in mf["errors"]:
                lines.append(f"    {err['config']}: {err['error']}: "
                             f"{err['message']}")

        slowest = self.slowest()
        if slowest:
            lines.append("  slowest configs:")
            for row in slowest:
                lines.append(f"    {row.label:<40} "
                             f"{row.elapsed * 1e3:10.3f} ms  "
                             f"[{row.engine}]")
        lines.append(f"  artifacts: {self.directory}")
        return "\n".join(lines)


def _fmt_opt_s(value: Any) -> str:
    return f"{value:.3f} s" if isinstance(value, (int, float)) else "-"
