"""``repro reproduce`` — re-execute a recorded run from its manifest.

The manifest is treated as the complete job spec: configs, engine, and
fault plan are rebuilt from the snapshot alone and re-executed against
the *current* model, bypassing every persistent cache (a reproduction
that reads the original's cached rows would only prove the cache
works).  The replayed rows are then diffed field-by-field against the
recorded ``summary.json`` within a relative tolerance; any drift names
the exact config and field, and the CLI exits non-zero.

A fingerprint mismatch (the model changed since the run was recorded)
is reported alongside the drift — drift with a matching fingerprint
means lost determinism, drift with a changed fingerprint means the
model moved; the two diagnoses are worlds apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.telemetry import manifest as manifest_mod
from repro.telemetry import state
from repro.telemetry.report import run_directory

#: Row fields compared between the recorded and replayed runs.
COMPARED_FIELDS = ("elapsed", "gflops", "dram_gbytes_per_s",
                   "comm_fraction")


@dataclass(frozen=True)
class RowDrift:
    """One field of one config that no longer matches the record."""

    config: str
    field: str
    recorded: float
    replayed: float

    @property
    def rel_error(self) -> float:
        scale = max(abs(self.recorded), abs(self.replayed))
        return abs(self.recorded - self.replayed) / scale if scale else 0.0

    def __str__(self) -> str:
        return (f"{self.config}: {self.field} recorded={self.recorded!r} "
                f"replayed={self.replayed!r} "
                f"(rel err {self.rel_error:.3e})")

    def to_dict(self) -> dict[str, Any]:
        return {"config": self.config, "field": self.field,
                "recorded": self.recorded, "replayed": self.replayed,
                "rel_error": self.rel_error}


@dataclass
class ReproduceReport:
    """Outcome of one manifest replay."""

    run_id: str
    engine: str
    rtol: float
    atol: float
    checked: int = 0
    fingerprint_match: bool = True
    drifts: list[RowDrift] = field(default_factory=list)
    #: Configs recorded in the summary whose replay produced no row
    #: (replay failure), as (label, reason) pairs.
    missing: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drifts and not self.missing

    def render(self) -> str:
        verdict = "REPRODUCED" if self.ok else "DRIFT"
        lines = [
            f"reproduce {self.run_id}: {verdict} "
            f"({self.checked} row(s) checked, engine={self.engine}, "
            f"rtol={self.rtol:g})"
        ]
        if not self.fingerprint_match:
            lines.append(
                "  NOTE: model fingerprint changed since the run was "
                "recorded — drift below reflects a model change, not "
                "lost determinism")
        for label, reason in self.missing:
            lines.append(f"  missing: {label}: {reason}")
        for drift in self.drifts:
            lines.append(f"  drift: {drift}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id, "ok": self.ok, "engine": self.engine,
            "rtol": self.rtol, "atol": self.atol, "checked": self.checked,
            "fingerprint_match": self.fingerprint_match,
            "drifts": [d.to_dict() for d in self.drifts],
            "missing": [{"config": label, "reason": reason}
                        for label, reason in self.missing],
        }


def _close(a: float, b: float, rtol: float, atol: float) -> bool:
    return math.isclose(a, b, rel_tol=rtol, abs_tol=atol)


def reproduce_run(run_id: str,
                  results_dir: str | Path | None = None, *,
                  rtol: float = 1e-9, atol: float = 0.0,
                  workers: int = 1) -> ReproduceReport:
    """Replay a recorded run and diff it against its ``summary.json``."""
    from repro.core.cache import config_digest, model_fingerprint
    from repro.core.persistence import load_sweep
    from repro.core.runner import run_config, run_sweep

    directory = run_directory(run_id, results_dir)
    manifest = manifest_mod.read_manifest(directory)
    summary_path = directory / manifest_mod.SUMMARY_FILENAME
    if not summary_path.exists():
        raise ConfigurationError(
            f"run {manifest['run_id']} has no summary.json (status "
            f"{manifest.get('status')!r}) — nothing to reproduce against")
    recorded = load_sweep(summary_path)
    configs = manifest_mod.manifest_configs(manifest)
    engine = str(manifest["engine"])

    fault_plan = None
    plan_record = manifest.get("fault_plan")
    if plan_record:
        from repro.faults.plan import FaultPlan

        fault_plan = FaultPlan.from_dict(plan_record["plan"])

    report = ReproduceReport(
        run_id=str(manifest["run_id"]), engine=engine,
        rtol=rtol, atol=atol,
        fingerprint_match=(manifest.get("model_fingerprint")
                           == model_fingerprint()),
    )

    # Replay against a throwaway dict cache, with telemetry silenced:
    # the replay must neither read the original's persistent rows nor
    # record itself as a new run while checking an old one.
    with state.suppressed():
        if fault_plan is not None:
            replayed_rows: list[Any] = []
            errors: list[Any] = []
            for config in configs:
                try:
                    replayed_rows.append(
                        run_config(config, None, engine=engine,
                                   fault_plan=fault_plan))
                except Exception as exc:  # noqa: BLE001 - diffed below
                    errors.append((config.label(),
                                   f"{type(exc).__name__}: {exc}"))
        else:
            sweep = run_sweep(manifest["name"] + "-reproduce", configs,
                              {}, workers=workers, engine=engine,
                              errors="capture")
            replayed_rows = list(sweep.rows)
            errors = [(err.config.label(), f"{err.error}: {err.message}")
                      for err in sweep.errors]

    replay_by_key = {config_digest(r.config): r for r in replayed_rows}
    failed_labels = dict(errors)
    for row in recorded.rows:
        key = config_digest(row.config)
        label = row.label
        replay = replay_by_key.get(key)
        if replay is None:
            report.missing.append(
                (label, failed_labels.get(label, "no replayed row")))
            continue
        report.checked += 1
        for field_name in COMPARED_FIELDS:
            a = float(getattr(row, field_name))
            b = float(getattr(replay, field_name))
            if not _close(a, b, rtol, atol):
                report.drifts.append(RowDrift(
                    config=label, field=field_name,
                    recorded=a, replayed=b))
    return report
